"""Figure 2: occurrences of random probes (NR1, NR2) by length.

Paper shape: NR1 lengths are evenly distributed in trios (n-1, n, n+1)
for n in {8, 12, 16, 22, 33, 41, 49}; NR2 probes are exactly 221 bytes
and roughly three times as common as all NR1 probes together.
"""

from collections import Counter

from repro.analysis import banner, render_histogram
from repro.gfw import NR1_CENTERS, NR1_LENGTHS, NR2_LENGTH, ProbeType


def test_fig2_random_probe_lengths(benchmark, emit, ss_result):
    def build():
        lengths = Counter(
            len(r.probe.payload) for r in ss_result.probe_log
            if r.probe_type in (ProbeType.NR1, ProbeType.NR2)
        )
        return lengths

    lengths = benchmark(build)
    nr1_total = sum(c for l, c in lengths.items() if l in NR1_LENGTHS)
    nr2_total = lengths.get(NR2_LENGTH, 0)
    text = (
        banner("Figure 2: random probe occurrences by length")
        + "\n" + render_histogram(dict(lengths), key_label="probe len")
        + f"\n\nNR1 total: {nr1_total}   NR2 (221 B) total: {nr2_total}"
        + f"\nNR2 : NR1 ratio = {nr2_total / nr1_total if nr1_total else float('inf'):.2f}"
          "  (paper: ~3)"
    )
    emit("fig2_random_probe_lengths", text)

    assert nr2_total > 0
    # NR1 lengths observed only within the trios.
    assert all(l in NR1_LENGTHS or l == NR2_LENGTH for l in lengths)
    if nr1_total:
        # NR2 dominates NR1, as in the paper (~3x); allow slack at bench scale.
        assert nr2_total > nr1_total
        # Trios are roughly even: every center's trio is represented when
        # NR1 volume is non-trivial.
        if nr1_total >= 40:
            seen_centers = {
                center for center in NR1_CENTERS
                if any(lengths.get(center + d, 0) for d in (-1, 0, 1))
            }
            assert len(seen_centers) >= 5
