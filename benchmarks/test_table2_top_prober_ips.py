"""Table 2: the most common prober IP addresses and their probe counts.

Paper shape: a modest head — the top addresses account for ~30-45 probes
each out of tens of thousands, i.e. no single machine dominates (unlike
the 202.108.181.70 hot spot of Ensafi et al.).
"""

from repro.analysis import banner, probes_per_ip, render_table, top_n
from repro.net import lookup_asn

PAPER_TOP = [
    ("175.42.1.21", 44), ("223.166.74.207", 38), ("124.235.138.113", 36),
    ("113.128.105.20", 36), ("221.213.75.88", 33), ("112.80.138.231", 32),
    ("116.252.2.39", 32), ("124.235.138.231", 32), ("221.213.75.126", 32),
    ("223.166.74.110", 31),
]


def test_table2_top_prober_ips(benchmark, emit, ss_result):
    def build():
        return top_n(probes_per_ip(ss_result.prober_ips), 10)

    top = benchmark(build)
    total = len(ss_result.prober_ips)
    rows = [
        (ip, count, f"AS{lookup_asn(ip)}", f"{paper_ip} ({paper_n})")
        for (ip, count), (paper_ip, paper_n) in zip(top, PAPER_TOP)
    ]
    text = (
        banner("Table 2: most common prober IP addresses")
        + "\n" + render_table(
            ["measured IP", "count", "AS", "paper counterpart"], rows)
        + f"\n\ntotal probes: {total} (paper: 51,837)"
    )
    emit("table2_top_prober_ips", text)

    assert len(top) == 10
    # Head is modest: the top address is well below 1% of all probes at
    # paper scale; allow bench-scale slack.
    assert top[0][1] < max(50, total * 0.1)
    # All heavy hitters resolve to the known Chinese prober ASes.
    assert all(lookup_asn(ip) is not None for ip, _ in top)
