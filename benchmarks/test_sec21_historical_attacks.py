"""§2.1: the historical stream-cipher attacks the paper recounts.

* BreakWa11 (2015): ATYP-byte scan — a measurable fraction of
  byte-flipped replays react differently, identifying Shadowsocks and
  the ATYP mask.
* Zhiniang Peng (2020): redirect decryption oracle — full plaintext
  recovery of a recorded connection, without the password.
* Both are stopped by AEAD ciphers and blunted by replay filters —
  the trajectory that §7.2's recommendations complete.
"""

from repro.analysis import banner, render_table
from repro.probesim import ProberSimulator, atyp_scan, redirect_attack

APP = b"GET /secret HTTP/1.1\r\nCookie: sessionid=hunter2\r\n\r\n"


def test_sec21_historical_attacks(benchmark, emit):
    def build():
        rows = []
        # ATYP scan against a masked, filterless stream server.
        sim = ProberSimulator("ssr", "aes-256-ctr", seed=201)
        payload = sim.record_legitimate_payload(APP, target=("target.example", 80))
        scan = atyp_scan(sim, payload, deltas=list(range(1, 97)))
        rows.append(("BreakWa11 ATYP scan vs ssr (stream, no filter)",
                     f"RST fraction {scan.rst_fraction:.2f} "
                     f"(masked: expect ~13/16=0.81)"))

        # Same scan against a replay-filtering server.
        sim2 = ProberSimulator("ss-libev-3.1.3", "aes-256-ctr", seed=202)
        payload2 = sim2.record_legitimate_payload(APP, target=("target.example", 80))
        scan2 = atyp_scan(sim2, payload2, deltas=list(range(1, 33)))
        uniform = len(set(scan2.reactions_by_delta.values())) == 1
        rows.append(("BreakWa11 ATYP scan vs libev (Bloom filter)",
                     "uniform reactions (scan learns nothing)" if uniform
                     else "leaks!"))

        # Peng redirect oracle.
        sim3 = ProberSimulator("ssr", "aes-256-ctr", seed=203)
        payload3 = sim3.record_legitimate_payload(APP, target=("target.example", 80))
        oracle = redirect_attack(sim3, payload3, "target.example", 80, APP)
        rows.append(("Peng redirect oracle vs ssr",
                     "full plaintext recovered"
                     if oracle.succeeded and b"hunter2" in oracle.recovered_plaintext
                     else "failed"))

        sim4 = ProberSimulator("ss-libev-3.1.3", "aes-256-ctr", seed=204)
        payload4 = sim4.record_legitimate_payload(APP, target=("target.example", 80))
        oracle2 = redirect_attack(sim4, payload4, "target.example", 80, APP)
        rows.append(("Peng redirect oracle vs libev (Bloom filter)",
                     "blocked" if not oracle2.succeeded else "leaks!"))
        return rows, scan, oracle, oracle2

    rows, scan, oracle, oracle2 = benchmark.pedantic(build, rounds=1,
                                                     iterations=1)
    text = (
        banner("Section 2.1: historical stream-cipher attacks")
        + "\n" + render_table(["attack", "outcome"], rows)
    )
    emit("sec21_historical_attacks", text)

    assert 0.70 < scan.rst_fraction < 0.92
    assert oracle.succeeded
    assert not oracle2.succeeded
