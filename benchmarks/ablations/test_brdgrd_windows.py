"""Ablation: brdgrd window policy (§7.1 limitations).

Compares random vs fixed window choices on two axes the paper raises:

* fingerprintability — a randomized window makes the server announce a
  different (and implausibly small) window every handshake;
* compatibility — windows that land the first segment between IV and
  IV+7 break implementations that demand a complete target spec in the
  first read (ShadowsocksR / Shadowsocks-python).
"""

import random

from repro.analysis import banner, render_table
from repro.defense import Brdgrd
from repro.net import Host, Network, Simulator
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer


def run_case(profile, method, guard_kwargs, connections=30, seed=0):
    sim = Simulator()
    net = Network(sim)
    client_host = Host(sim, net, "192.0.2.10", "client")
    server_host = Host(sim, net, "198.51.100.10", "server")
    web = Host(sim, net, "198.18.0.10", "web")
    web.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(b"ok")))
    net.register_name("example.com", web.ip)
    guard = Brdgrd(server_host.ip, 8388, rng=random.Random(seed), **guard_kwargs)
    net.add_middlebox(guard)
    ShadowsocksServer(server_host, 8388, "pw", method, profile)
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw", method)
    sessions = []
    for i in range(connections):
        sim.schedule(i * 5.0, lambda: sessions.append(
            client.open("example.com", 80, b"GET / HTTP/1.1\r\n\r\n")))
    sim.run(until=connections * 5.0 + 60)
    ok = sum(1 for s in sessions if bytes(s.reply) == b"ok")
    failed = sum(1 for s in sessions if s.reset)
    # Fingerprint surface: how many distinct SYN/ACK windows the client saw.
    windows = {
        r.segment.window for r in client_host.capture.received()
        if r.segment.has(0x02) and r.segment.has(0x10)
    }
    return ok, failed, len(windows)


def test_ablation_brdgrd_windows(benchmark, emit):
    def build():
        return {
            "random window, robust server": run_case(
                "ss-libev-3.3.1", "aes-256-gcm",
                {"window_low": 10, "window_high": 40}, seed=91),
            "fixed window, robust server": run_case(
                "ss-libev-3.3.1", "aes-256-gcm", {"fixed_window": 24}, seed=92),
            "random window, legacy server": run_case(
                "ssr", "aes-256-ctr",
                {"window_low": 14, "window_high": 30}, seed=93),
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (name, ok, failed, distinct)
        for name, (ok, failed, distinct) in results.items()
    ]
    text = (
        banner("Ablation: brdgrd window policy")
        + "\n" + render_table(
            ["configuration", "tunnels ok", "tunnels RST", "distinct windows seen"],
            rows)
    )
    emit("ablation_brdgrd_windows", text)

    ok, failed, distinct = results["random window, robust server"]
    assert ok == 30 and failed == 0
    assert distinct > 5  # the randomized window is itself a fingerprint

    ok, failed, distinct = results["fixed window, robust server"]
    assert ok == 30 and failed == 0
    assert distinct == 1

    ok, failed, distinct = results["random window, legacy server"]
    assert failed > 0  # §7.1: brdgrd can break legacy implementations