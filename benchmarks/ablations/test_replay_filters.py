"""Ablation: replay defenses vs the Figure 7 delay distribution.

Compares three server configurations against replays drawn from the
paper's delay model (0.28 s to 570 h), with a daemon restart midway:

* no filter            — every replay succeeds;
* Bloom filter only    — replays before the restart are caught, replays
                         after it succeed (the §7.2 asymmetry);
* Bloom + timestamps   — only replays inside the freshness window ever
                         succeed, restart or not.
"""

import random

from repro.analysis import banner, render_table
from repro.gfw import ProbeType, ReplayDelayModel
from repro.probesim import ProberSimulator, ReactionKind

N_REPLAYS = 30
RESTART_AFTER_INDEX = N_REPLAYS // 2


def run_case(profile, timed_window, seed):
    sim = ProberSimulator(profile, "chacha20-ietf-poly1305", seed=seed,
                          timed_replay_window=timed_window)
    payload = sim.record_legitimate_payload()
    delays = sorted(
        ReplayDelayModel().sample(random.Random(seed + i))
        for i in range(N_REPLAYS)
    )
    succeeded = 0
    for index, delay in enumerate(delays):
        if index == RESTART_AFTER_INDEX:
            sim.server.restart()
        target = sim.sim.now + max(0.0, delay - sim.sim.now)
        sim.sim.run(until=target)
        result = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
        if result.reaction == ReactionKind.DATA:
            succeeded += 1
    return succeeded


def test_ablation_replay_filters(benchmark, emit):
    def build():
        return {
            "no filter": run_case("outline-1.0.7", None, 81),
            "bloom only": run_case("outline-1.1.0", None, 82),
            "bloom + timestamps": run_case("outline-1.1.0", 120.0, 83),
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [(name, f"{n}/{N_REPLAYS}") for name, n in results.items()]
    text = (
        banner("Ablation: replay filters vs delayed replays (restart midway)")
        + "\n" + render_table(["server defense", "replays answered with data"], rows)
    )
    emit("ablation_replay_filters", text)

    assert results["no filter"] == N_REPLAYS
    # Bloom-only: replays after the restart get through.
    assert 0 < results["bloom only"] < N_REPLAYS
    # Timed filter closes the restart hole entirely (replays are stale).
    assert results["bloom + timestamps"] == 0
