"""Ablation: which detector feature does the work?

Runs the passive classifier over two populations — Shadowsocks first
packets (encrypted browse traffic) and plaintext HTTP/TLS first packets —
with the length filter and the entropy filter toggled, reporting the
flag rate on each population.  The full detector flags encrypted
tunnels while barely touching plaintext; removing either feature
degrades the separation.
"""

import random

from repro.analysis import banner, render_table
from repro.gfw import DetectorConfig, PassiveDetector
from repro.shadowsocks import encode_target
from repro.shadowsocks.aead_session import AeadEncryptor, aead_master_key
from repro.workloads import SITES, http_get_request, site_request, tls_client_hello

N = 400


def shadowsocks_first_packets(rng):
    master = aead_master_key("pw", "chacha20-ietf-poly1305")
    out = []
    for _ in range(N):
        site = rng.choice(SITES)
        payload = encode_target(site, 443) + site_request(site, rng)
        enc = AeadEncryptor("chacha20-ietf-poly1305", master, rng=rng)
        out.append(enc.encrypt(payload))
    return out


def plaintext_first_packets(rng):
    out = []
    for _ in range(N):
        site = rng.choice(SITES)
        if rng.random() < 0.5:
            out.append(http_get_request(site, rng))
        else:
            out.append(tls_client_hello(site, rng))
    return out


CONFIGS = [
    ("full detector", DetectorConfig(base_rate=1.0)),
    ("no length filter", DetectorConfig(base_rate=1.0, length_filter=False)),
    ("no entropy filter", DetectorConfig(base_rate=1.0, entropy_filter=False)),
    ("neither filter", DetectorConfig(base_rate=1.0, length_filter=False,
                                      entropy_filter=False)),
]


def test_ablation_detector_features(benchmark, emit):
    rng = random.Random(61)
    ss = shadowsocks_first_packets(rng)
    plain = plaintext_first_packets(rng)

    def build():
        rows = []
        for name, config in CONFIGS:
            det = PassiveDetector(config)
            ss_rate = sum(det.flag_probability(p) for p in ss) / len(ss)
            plain_rate = sum(det.flag_probability(p) for p in plain) / len(plain)
            rows.append((name, ss_rate, plain_rate))
        return rows

    rows = benchmark(build)
    rendered = [
        (name, f"{ss_rate:.3f}", f"{plain_rate:.3f}",
         f"{ss_rate / plain_rate:.1f}x" if plain_rate else "inf")
        for name, ss_rate, plain_rate in rows
    ]
    text = (
        banner("Ablation: detector feature contributions")
        + "\n" + render_table(
            ["detector variant", "flag rate (Shadowsocks)",
             "flag rate (plaintext)", "separation"], rendered)
    )
    emit("ablation_detector_features", text)

    by_name = {name: (s, p) for name, s, p in rows}
    full_ss, full_plain = by_name["full detector"]
    none_ss, none_plain = by_name["neither filter"]
    # The full detector separates the populations — only modestly, which is
    # faithful: the paper's passive filter is a coarse pre-screen (Figure 9
    # spans just 4x from entropy 3 to 7.2), and the *active probes* do the
    # actual disambiguation.
    assert full_ss > 1.4 * full_plain
    # ...while with both features removed there is no separation at all.
    assert abs(none_ss - none_plain) < 1e-9
    # Entropy alone (no length filter) still separates encrypted from
    # plaintext HTTP, but less sharply than the full detector.
    nolen_ss, nolen_plain = by_name["no length filter"]
    assert nolen_ss > nolen_plain
    assert (full_ss / max(full_plain, 1e-9)) > (nolen_ss / max(nolen_plain, 1e-9))
