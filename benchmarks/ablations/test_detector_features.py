"""Ablation: which detector feature does the work?

Runs the registered ``ablation-detector-features`` scenario: the passive
classifier scores two populations — Shadowsocks first packets (encrypted
browse traffic) and plaintext HTTP/TLS first packets — with the length
filter and the entropy filter toggled, reporting the flag rate on each
population.  The full detector flags encrypted tunnels while barely
touching plaintext; removing either feature degrades the separation.
"""

from repro.analysis import banner, render_table
from repro.runtime import run_scenario


def test_ablation_detector_features(benchmark, emit, run_cache):
    def build():
        return run_scenario("ablation-detector-features", seed=61,
                            cache=run_cache).payload["rows"]

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    rendered = [
        (name, f"{r['ss_rate']:.3f}", f"{r['plain_rate']:.3f}",
         f"{r['ss_rate'] / r['plain_rate']:.1f}x" if r["plain_rate"] else "inf")
        for name, r in rows.items()
    ]
    text = (
        banner("Ablation: detector feature contributions")
        + "\n" + render_table(
            ["detector variant", "flag rate (Shadowsocks)",
             "flag rate (plaintext)", "separation"], rendered)
    )
    emit("ablation_detector_features", text)

    full = rows["full detector"]
    none = rows["neither filter"]
    # The full detector separates the populations — only modestly, which is
    # faithful: the paper's passive filter is a coarse pre-screen (Figure 9
    # spans just 4x from entropy 3 to 7.2), and the *active probes* do the
    # actual disambiguation.
    assert full["ss_rate"] > 1.4 * full["plain_rate"]
    # ...while with both features removed there is no separation at all.
    assert abs(none["ss_rate"] - none["plain_rate"]) < 1e-9
    # Entropy alone (no length filter) still separates encrypted from
    # plaintext HTTP, but less sharply than the full detector.
    nolen = rows["no length filter"]
    assert nolen["ss_rate"] > nolen["plain_rate"]
    assert (full["ss_rate"] / max(full["plain_rate"], 1e-9)) > \
        (nolen["ss_rate"] / max(nolen["plain_rate"], 1e-9))
