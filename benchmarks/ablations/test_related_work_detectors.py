"""Ablation: the paper's detector vs the related-work classifiers (§8).

Trains the published proof-of-concept designs — entropy threshold
(Zhixin Wang / sssniff) and length-distribution likelihood ratio
(Madeye) — on Shadowsocks-vs-plaintext first packets, then scores all
three detectors on held-out data.  The trainable classifiers *beat* the
GFW's hand-built filter on this binary task, which sharpens the paper's
point: the GFW's passive stage is deliberately low-precision because the
active probes carry the confirmation burden — and, unlike an offline
classifier, it must run at line rate on a backbone.
"""

import random

from repro.analysis import banner, render_table
from repro.gfw import DetectorConfig, PassiveDetector
from repro.gfw.altdetectors import (
    EntropyClassifier,
    LengthDistributionClassifier,
    evaluate_detector,
)
from repro.shadowsocks import encode_target
from repro.shadowsocks.aead_session import AeadEncryptor, aead_master_key
from repro.workloads import SITES, http_get_request, site_request, tls_client_hello

N = 300


def samples(seed):
    rng = random.Random(seed)
    master = aead_master_key("pw", "chacha20-ietf-poly1305")
    positives = []
    for _ in range(N):
        site = rng.choice(SITES)
        enc = AeadEncryptor("chacha20-ietf-poly1305", master, rng=rng)
        positives.append(enc.encrypt(encode_target(site, 443)
                                     + site_request(site, rng)))
    negatives = []
    for _ in range(N):
        site = rng.choice(SITES)
        negatives.append(http_get_request(site, rng) if rng.random() < 0.5
                         else tls_client_hello(site, rng))
    return positives, negatives


def test_ablation_related_work_detectors(benchmark, emit):
    def build():
        train_pos, train_neg = samples(401)
        test_pos, test_neg = samples(402)
        paper = PassiveDetector(DetectorConfig(base_rate=1.0))
        # The paper's detector is probabilistic; flag = above-median score.
        cutoff = 0.02
        detectors = {
            "paper detector (len+entropy)":
                lambda p: paper.flag_probability(p) > cutoff,
            "entropy threshold (Wang/sssniff)":
                EntropyClassifier().fit(train_pos, train_neg).flag,
            "length distribution (Madeye)":
                LengthDistributionClassifier().fit(train_pos, train_neg).flag,
        }
        return {
            name: evaluate_detector(flag, test_pos, test_neg)
            for name, flag in detectors.items()
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (name, f"{ev.recall:.0%}", f"{ev.false_positive_rate:.0%}",
         f"{ev.f1:.2f}")
        for name, ev in results.items()
    ]
    text = (
        banner("Ablation: passive detectors from §8 vs the paper's model")
        + "\n" + render_table(
            ["detector", "recall", "false-positive rate", "F1"], rows)
        + "\n\nThe offline classifiers win the binary task; the GFW's filter"
          "\nis deliberately coarse because active probing confirms."
    )
    emit("ablation_related_work_detectors", text)

    entropy_ev = results["entropy threshold (Wang/sssniff)"]
    assert entropy_ev.recall > 0.9 and entropy_ev.false_positive_rate < 0.1
    length_ev = results["length distribution (Madeye)"]
    assert length_ev.recall > 0.4  # lengths overlap: TLS hellos look alike
    paper_ev = results["paper detector (len+entropy)"]
    assert paper_ev.recall > 0.0
