"""Ablation: stage-2 gating.

The GFW does not send R3/R4/R5 until a server answers a stage-1 replay
(§4.2).  This ablation compares the staged scheduler against a variant
that fires the stage-2 burst unconditionally, measuring probe volume
per server class.  Gating spends the expensive byte-changed probes only
on servers where they are informative.
"""

import random

from repro.analysis import banner, render_table
from repro.runtime.topology import build_world
from repro.gfw import DetectorConfig, ProbeType, SchedulerConfig
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver


def run_variant(gated: bool, seed: int):
    world = build_world(
        seed=seed,
        detector_config=DetectorConfig(base_rate=1.0, length_filter=False,
                                       entropy_filter=False),
        websites=["example.com"],
    )
    if not gated:
        # Disable the gate: pretend every server already answered a replay.
        scheduler = world.gfw.scheduler
        original = scheduler.on_flagged_connection

        def ungated(ip, port, payload):
            state = scheduler.state_for(ip, port)
            original(ip, port, payload)
            if state.stage == 1:
                state.stage = 2
                scheduler._enter_stage2(state)

        scheduler.on_flagged_connection = ungated

    deployments = [("filtered", "ss-libev-3.3.1"), ("vulnerable", "outline-1.0.7")]
    for name, profile in deployments:
        server_host = world.add_server(f"{name}-server", region="uk")
        client_host = world.add_client(f"{name}-client")
        ShadowsocksServer(server_host, 8388, f"pw-{name}",
                          "chacha20-ietf-poly1305", profile)
        client = ShadowsocksClient(client_host, server_host.ip, 8388,
                                   f"pw-{name}", "chacha20-ietf-poly1305")
        CurlDriver(client, rng=random.Random(seed),
                   sites=["example.com"]).run_schedule(25, 20.0)
    world.sim.run(until=12 * 3600)

    per_server = {}
    for record in world.gfw.probe_log:
        per_server.setdefault(record.server_ip, []).append(record)
    return world, per_server


def test_ablation_staged_probing(benchmark, emit):
    def build():
        return run_variant(gated=True, seed=71), run_variant(gated=False, seed=71)

    (gated_world, gated), (ungated_world, ungated) = benchmark.pedantic(
        build, rounds=1, iterations=1)

    def stage2_count(per_server):
        return sum(
            1 for records in per_server.values() for r in records
            if r.probe_type in (ProbeType.R3, ProbeType.R4, ProbeType.R5,
                                ProbeType.R6)
        )

    rows = [
        ("gated (paper)", sum(len(v) for v in gated.values()), stage2_count(gated)),
        ("ungated", sum(len(v) for v in ungated.values()), stage2_count(ungated)),
    ]
    text = (
        banner("Ablation: stage-2 gating vs unconditional stage 2")
        + "\n" + render_table(["scheduler", "total probes", "stage-2 probes"], rows)
    )
    emit("ablation_staged_probing", text)

    # Gating sends far fewer stage-2 probes overall...
    assert stage2_count(gated) < stage2_count(ungated)
    # ...and spends them only on the replay-vulnerable server.
    filtered_ip = gated_world.hosts["filtered-server"].ip
    gated_filtered_stage2 = [
        r for r in gated.get(filtered_ip, [])
        if r.probe_type in (ProbeType.R3, ProbeType.R4)
    ]
    assert not gated_filtered_stage2
