"""Ablation: path impairments against the full GFW pipeline.

Runs the registered ``impairment-matrix`` scenario: the same tunneled
browsing workload repeats in a grid of (loss, reorder) path conditions,
recording the passive detector's hit rate, probe volume, TCP
retransmission counts, and whether the server ended up blocked.

The paper's measurements ran over the real China↔abroad Internet, so
its detection rates already embed real path loss; this matrix shows the
pipeline keeps functioning as conditions degrade — retransmitted
feature packets neither hide the flow from the detector nor get it
flagged twice.
"""

from repro.analysis import banner, render_table
from repro.runtime import run_scenario


def test_ablation_impairment_matrix(benchmark, emit, run_cache):
    def build():
        return run_scenario(
            "impairment-matrix", seed=97,
            overrides={"loss_rates": (0.0, 0.01, 0.05),
                       "reorder_rates": (0.0, 0.05),
                       "connections": 30,
                       "duration": 6 * 3600.0},
            cache=run_cache).payload["cells"]

    cells = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (label, cell["inspected"], cell["flagged"], cell["probes"],
         cell["tcp_retransmits"], cell["impairment_drops"],
         "BLOCKED" if cell["blocked"] else "up")
        for label, cell in cells.items()
    ]
    text = (
        banner("Ablation: path impairments vs detection and blocking")
        + "\n" + render_table(
            ["path condition", "inspected", "flagged", "probes",
             "tcp retx", "dropped", "fate"], rows)
    )
    emit("ablation_impairment_matrix", text)

    pristine = cells["loss=0|reorder=0"]
    lossy = cells["loss=0.05|reorder=0"]
    assert pristine["tcp_retransmits"] == 0
    assert pristine["impairment_drops"] == 0
    assert pristine["flagged"] > 0
    # Faults actually fire on the lossy cells, and the endpoints recover
    # enough first-data packets for the detector to keep seeing the flow.
    assert lossy["impairment_drops"] > 0
    assert lossy["tcp_retransmits"] > 0
    assert lossy["inspected"] > 0
