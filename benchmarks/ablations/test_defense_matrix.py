"""Ablation: the §7 defense matrix against the full GFW pipeline.

For each server defense configuration, run the same browsing workload
under an aggressive GFW with blocking enabled, and record: connections
flagged, probes drawn, whether a replay ever got data, and whether the
server ended up blocked.

Expected ordering (the paper's §7 narrative):

* a replay-vulnerable stream server is confirmed and blocked;
* switching to a hardened, replay-filtered AEAD server survives, though
  it still draws probes;
* adding brdgrd removes even the probes, by defeating the passive stage.
"""

import random

from repro.analysis import banner, render_table
from repro.defense import Brdgrd, harden
from repro.experiments.common import build_world
from repro.gfw import BlockingPolicy, DetectorConfig, Reaction
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer, get_profile
from repro.workloads import CurlDriver

CASES = [
    # (label, method, profile-or-factory, use_brdgrd)
    ("stream, no defenses (ssr)", "aes-256-ctr", "ssr", False),
    ("AEAD, old libev", "aes-256-gcm", "ss-libev-3.1.3", False),
    ("AEAD, hardened + replay filter", "chacha20-ietf-poly1305",
     harden(get_profile("outline-1.0.7")), False),
    ("hardened + brdgrd", "chacha20-ietf-poly1305",
     harden(get_profile("outline-1.0.7")), True),
]


def run_case(method, profile, use_brdgrd, seed):
    world = build_world(
        seed=seed,
        # Realistic detector shape (length + entropy), boosted rate so the
        # scaled workload yields decisive evidence quickly.
        detector_config=DetectorConfig(base_rate=1.0),
        blocking_policy=BlockingPolicy(human_gated=False,
                                       block_probability=1.0),
        websites=["example.com"],
    )
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    if use_brdgrd:
        world.net.add_middlebox(Brdgrd(server_host.ip, 8388,
                                       rng=random.Random(seed)))
    ShadowsocksServer(server_host, 8388, "pw", method, profile,
                      rng=random.Random(seed + 1))
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               method, rng=random.Random(seed + 2))
    CurlDriver(client, rng=random.Random(seed + 3),
               sites=["example.com"]).run_schedule(30, 20.0)
    world.sim.run(until=12 * 3600)
    replay_data = sum(
        1 for r in world.gfw.probe_log
        if r.probe.is_replay and r.reaction == Reaction.DATA
    )
    return {
        "flagged": world.gfw.flagged_connections,
        "probes": len(world.gfw.probe_log),
        "replay_data": replay_data,
        "blocked": world.gfw.blocking.is_blocked(server_host.ip, 8388),
    }


def test_ablation_defense_matrix(benchmark, emit):
    def build():
        return {
            label: run_case(method, profile, brdgrd, seed=300 + i)
            for i, (label, method, profile, brdgrd) in enumerate(CASES)
        }

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (label, r["flagged"], r["probes"], r["replay_data"],
         "BLOCKED" if r["blocked"] else "up")
        for label, r in results.items()
    ]
    text = (
        banner("Ablation: defense configurations vs the full GFW pipeline")
        + "\n" + render_table(
            ["server configuration", "flagged", "probes",
             "replays answered", "fate"], rows)
    )
    emit("ablation_defense_matrix", text)

    undefended = results["stream, no defenses (ssr)"]
    hardened = results["AEAD, hardened + replay filter"]
    guarded = results["hardened + brdgrd"]
    assert undefended["replay_data"] > 0
    assert undefended["blocked"]
    assert hardened["replay_data"] == 0
    assert not hardened["blocked"]
    assert hardened["probes"] > 0          # still probed (§11: Outline was)
    # brdgrd removes the passive trigger itself: no flags, no probes.
    assert guarded["flagged"] == 0
    assert guarded["probes"] == 0
    assert not guarded["blocked"]
