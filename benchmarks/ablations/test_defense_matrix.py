"""Ablation: the §7 defense matrix against the full GFW pipeline.

Runs the registered ``ablation-defense-matrix`` scenario: for each
server defense configuration, the same browsing workload runs under an
aggressive GFW with blocking enabled, recording connections flagged,
probes drawn, whether a replay ever got data, and whether the server
ended up blocked.

Expected ordering (the paper's §7 narrative):

* a replay-vulnerable stream server is confirmed and blocked;
* switching to a hardened, replay-filtered AEAD server survives, though
  it still draws probes;
* adding brdgrd removes even the probes, by defeating the passive stage.
"""

from repro.analysis import banner, render_table
from repro.runtime import run_scenario


def test_ablation_defense_matrix(benchmark, emit, run_cache):
    def build():
        return run_scenario("ablation-defense-matrix", seed=300,
                            cache=run_cache).payload["cases"]

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        (label, r["flagged"], r["probes"], r["replay_data"],
         "BLOCKED" if r["blocked"] else "up")
        for label, r in results.items()
    ]
    text = (
        banner("Ablation: defense configurations vs the full GFW pipeline")
        + "\n" + render_table(
            ["server configuration", "flagged", "probes",
             "replays answered", "fate"], rows)
    )
    emit("ablation_defense_matrix", text)

    undefended = results["stream, no defenses (ssr)"]
    hardened = results["AEAD, hardened + replay filter"]
    guarded = results["hardened + brdgrd"]
    assert undefended["replay_data"] > 0
    assert undefended["blocked"]
    assert hardened["replay_data"] == 0
    assert not hardened["blocked"]
    assert hardened["probes"] > 0          # still probed (§11: Outline was)
    # brdgrd removes the passive trigger itself: no flags, no probes.
    assert guarded["flagged"] == 0
    assert guarded["probes"] == 0
    assert not guarded["blocked"]
