"""Figure 4: overlap in prober source IPs across independent datasets.

Paper shape: the 12,300 Shadowsocks-probe addresses overlap only
slightly with Dunna et al.'s 934 Tor-probe addresses (5 shared) and
Ensafi et al.'s ~22,000 addresses (167 shared); the historical sets
share 34; no address appears in all three.  High churn, same networks.
"""

import random

from repro.analysis import (
    PAPER_FIG4_REGIONS,
    banner,
    render_table,
    synthesize_historical_sets,
    venn3,
)
from repro.net import ASDatabase


def test_fig4_dataset_overlap(benchmark, emit):
    rng = random.Random(42)
    asdb = ASDatabase()
    current = set()
    while len(current) < 12300:
        current.add(asdb.sample_ip(rng))

    def build():
        dunna, ensafi = synthesize_historical_sets(list(current), random.Random(43))
        return venn3(set(current), dunna, ensafi)

    regions = benchmark(build)
    rows = [
        (key, regions[key], PAPER_FIG4_REGIONS[key]) for key in sorted(regions)
    ]
    text = (
        banner("Figure 4: prober IP overlap across datasets")
        + "\n" + render_table(["Venn region", "measured", "paper"], rows)
    )
    emit("fig4_dataset_overlap", text)
    assert regions == PAPER_FIG4_REGIONS
