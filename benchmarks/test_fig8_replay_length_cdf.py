"""Figure 8: CDF of replayed payload lengths (Exp 1.a).

Paper shape: trigger connections span 1-1000 bytes uniformly, but
replayed payloads concentrate between 160 and 700 bytes (max 999) with a
stair-step pattern: replayed lengths prefer remainder 9 (mod 16) in
168-263, remainder 2 in 384-687, and a mix of both in 264-383.
"""

from collections import Counter

from repro.analysis import ECDF, banner, render_cdf_points


def remainder_share(lengths, lo, hi, remainder):
    band = [l for l in lengths if lo <= l <= hi]
    if not band:
        return 0.0, 0
    hits = sum(1 for l in band if l % 16 == remainder)
    return hits / len(band), len(band)


def test_fig8_replay_length_cdf(benchmark, emit, sink_1a):
    def build():
        return sink_1a.replay_lengths(types=("R1",))

    lengths = benchmark(build)
    assert lengths, "no replays recorded"
    cdf = ECDF(lengths)
    trigger_cdf = ECDF(sink_1a.trigger_lengths)
    share_b1, n_b1 = remainder_share(lengths, 168, 263, 9)
    share_b3, n_b3 = remainder_share(lengths, 384, 687, 2)
    core = sum(1 for l in lengths if 160 <= l <= 700) / len(lengths)
    text = (
        banner("Figure 8: payload lengths of replay-based probes (Exp 1.a)")
        + "\n" + render_cdf_points(
            [(x, cdf(x)) for x in (100, 160, 263, 383, 500, 687, 700, 999)],
            x_label="replay len")
        + f"\n\ntrigger lengths: N={len(sink_1a.trigger_lengths)}"
          f" min={trigger_cdf.min:g} max={trigger_cdf.max:g}"
        + f"\nreplay lengths:  N={len(lengths)} min={min(lengths)}"
          f" max={max(lengths)} (paper: 161-999)"
        + f"\nshare in 160-700 core: {core:.0%}"
        + f"\nremainder 9 share in 168-263: {share_b1:.0%} of {n_b1}"
          " (paper: 72%)"
        + f"\nremainder 2 share in 384-687: {share_b3:.0%} of {n_b3}"
          " (paper: 96%)"
    )
    emit("fig8_replay_length_cdf", text)

    assert core > 0.8
    assert max(lengths) <= 999
    assert 0.5 < share_b1 <= 1.0
    assert 0.8 < share_b3 <= 1.0
