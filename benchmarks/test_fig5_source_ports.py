"""Figure 5: CDF of TCP source ports of probe SYNs.

Paper shape: ~90% of probes use the common Linux ephemeral range
32768-60999; none use a port below 1024 (lowest observed 1212, highest
65237) — unlike earlier probing infrastructure, which used all ports.
"""

from repro.analysis import ECDF, banner, port_statistics, render_cdf_points


def test_fig5_source_ports(benchmark, emit, ss_result):
    ports = [r.src_port for r in ss_result.probe_log]

    def build():
        return port_statistics(ports)

    stats = benchmark(build)
    cdf = ECDF(ports)
    text = (
        banner("Figure 5: prober TCP source ports")
        + "\n" + render_cdf_points(
            cdf.sample_points([1024, 16384, 32768, 45000, 60999, 65237]),
            x_label="port",
        )
        + f"\n\nLinux-default-range share: {stats['linux_range_share']:.0%}"
          " (paper: ~90%)"
        + f"\nlowest port: {stats['min']} (paper: 1212, never <1024)"
        + f"\nhighest port: {stats['max']} (paper: 65237)"
    )
    emit("fig5_source_ports", text)

    assert 0.85 < stats["linux_range_share"] < 0.95
    assert stats["below_1024"] == 0
    assert stats["min"] >= 1024
