"""Figure 3: cumulative number of probes per prober IP address.

Paper shape: 51,837 probes from 12,300 unique IPs; in contrast to prior
work (95% of addresses seen once), more than 75% of addresses sent more
than one probe, and the heaviest hitters account for ~30-45 probes each.
"""

from repro.analysis import ECDF, banner, probes_per_ip, render_table


def test_fig3_probes_per_ip(benchmark, emit, ss_result):
    def build():
        return probes_per_ip(ss_result.prober_ips)

    counts = benchmark(build)
    assert counts, "no probes recorded"
    total = sum(counts.values())
    unique = len(counts)
    multi = sum(1 for c in counts.values() if c > 1)
    cdf = ECDF(list(counts.values()))
    rows = [
        ("total probes", total, 51837),
        ("unique prober IPs", unique, 12300),
        ("share of IPs with >1 probe", f"{multi / unique:.0%}", ">75%"),
        ("max probes from one IP", max(counts.values()), 44),
        ("median probes per IP", cdf.quantile(0.5), "-"),
    ]
    text = (
        banner("Figure 3: probes per prober IP address")
        + "\n" + render_table(["metric", "measured", "paper"], rows)
    )
    emit("fig3_probes_per_ip", text)

    assert multi / unique > 0.6
    assert max(counts.values()) > 3
