"""Figure 7: CDF of the delay of replay-based probes.

Paper shape (first-replay curve): minimum 0.28 s; >20% within 1 second;
>50% within 1 minute; >75% within 15 minutes; maximum 569.55 hours.
Repeated payloads (up to 47 replays of one payload) push the
"all replays" curve right of the "first replay" curve.
"""

from repro.analysis import ECDF, banner, render_cdf_points


def test_fig7_replay_delay(benchmark, emit, ss_result):
    def build():
        return ss_result.replay_delays

    first, all_delays = benchmark(build)
    assert first, "no replay delays recorded"
    cdf_first = ECDF(first)
    cdf_all = ECDF(all_delays)
    marks = [1.0, 60.0, 900.0, 3600.0, 36000.0]
    rows = [
        (f"{m:g}s", f"{cdf_first(m):.0%}", f"{cdf_all(m):.0%}")
        for m in marks
    ]
    text = (
        banner("Figure 7: replay-probe delay CDF")
        + "\n" + render_table_like(rows)
        + f"\n\nfirst replays: {len(first)}  all replays: {len(all_delays)}"
        + f"\nmin delay: {cdf_first.min:.2f}s (paper: 0.28 s)"
        + f"\nmax delay: {cdf_all.max / 3600:.1f}h (paper: 569.55 h)"
    )
    emit("fig7_replay_delay", text)

    # Anchor quantiles from the paper, with sampling slack.
    assert 0.10 <= cdf_first(1.0) <= 0.35
    assert 0.40 <= cdf_first(60.0) <= 0.65
    assert 0.65 <= cdf_first(900.0) <= 0.88
    assert cdf_first.min >= 0.28
    # Repeats exist: more replays than distinct payloads.
    assert len(all_delays) > len(first)


def render_table_like(rows):
    from repro.analysis import render_table

    return render_table(["delay", "first replay CDF", "all replays CDF"], rows)
