"""Figure 9: replay rate per legitimate connection vs payload entropy.

Paper shape: every entropy can be replayed, but a packet of per-byte
entropy 7.2 is roughly four times as likely to draw a replay as one of
entropy 3.0; the curve rises monotonically (Exp 3).
"""

from repro.analysis import banner, render_table


def test_fig9_entropy_vs_replay(benchmark, emit, sink_3):
    def build():
        return sink_3.replay_ratio_by_entropy(bins=8)

    series = benchmark(build)
    rows = [(f"{center:.1f}", f"{ratio:.3%}") for center, ratio in series]
    text = (
        banner("Figure 9: replay rate vs first-packet entropy (Exp 3)")
        + "\n" + render_table(["entropy bin center", "replays per connection"], rows)
    )

    # Compare the high-entropy end against the ~3.0 bin (paper: ~4x).
    ratios = dict(series)
    low = ratios[3.5] or ratios[2.5]
    high = ratios[7.5]
    text += f"\n\nratio(entropy 7.5) / ratio(entropy 3.5) = {high / low:.1f} (paper: ~4)"
    emit("fig9_entropy_vs_replay", text)

    assert high > 0
    assert low > 0, "low-entropy packets can still be replayed"
    assert 2.0 < high / low < 8.0
    # Broadly monotone: the top bin beats every bin at or below 4.
    for center, ratio in series:
        if center <= 4.0:
            assert high >= ratio
