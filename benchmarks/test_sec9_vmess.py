"""§9 (future work): does the GFW's machinery extend to VMess?

The paper conjectures that other fully-encrypted protocols are caught by
the same first-packet trigger, and that VMess's 2020 weaknesses are
probe-able.  This benchmark runs both halves:

* VMess tunnel traffic through the GFW world draws probes at a rate
  comparable to Shadowsocks traffic of the same shape;
* a legacy V2Ray server is distinguishable via replay and the
  header-length oracle, while v4.23 behaviour is not.
"""

import random

from repro.analysis import banner, render_table
from repro.experiments import build_world
from repro.gfw import DetectorConfig
from repro.net import Host, Network, Simulator
from repro.vmess import VmessClient, VmessServer, auth_for

USER_ID = bytes(range(16))


def probing_rate(kind: str, seed: int) -> float:
    world = build_world(seed=seed, detector_config=DetectorConfig(base_rate=0.9),
                        websites=["site.example"])
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    pad_rng = random.Random(seed + 2)

    def payload():
        # Vary the request size, as real browsing does, so first-packet
        # lengths sweep across the detector's remainder bands.
        return (b"GET / HTTP/1.1\r\nHost: site.example\r\n\r\n"
                + b"A" * pad_rng.randint(100, 400))

    if kind == "vmess":
        VmessServer(server_host, 10086, USER_ID, "v2ray-legacy",
                    rng=random.Random(seed))
        client = VmessClient(client_host, server_host.ip, 10086, USER_ID,
                             rng=random.Random(seed + 1))
        opener = lambda: client.open("site.example", 80, payload())
    else:
        from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer

        ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                          "outline-1.0.7", rng=random.Random(seed))
        ss = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "chacha20-ietf-poly1305",
                               rng=random.Random(seed + 1))
        opener = lambda: ss.open("site.example", 80, payload())
    connections = 60
    for i in range(connections):
        world.sim.schedule(i * 30.0, opener)
    world.sim.run(until=4 * 3600)
    return len(world.gfw.probe_log) / connections


def oracle_outcomes() -> dict:
    outcomes = {}
    for profile in ("v2ray-legacy", "v2ray-4.23"):
        sim = Simulator()
        net = Network(sim)
        server_host = Host(sim, net, "198.51.100.40", "vmess")
        prober = Host(sim, net, "192.0.2.40", "prober")
        VmessServer(server_host, 10086, USER_ID, profile, rng=random.Random(1))
        auth = auth_for(USER_ID, int(sim.now))
        garbage = bytes(random.Random(2).randrange(256) for _ in range(80))
        conn = prober.connect("198.51.100.40", 10086)
        state = {"reset": False}
        conn.on_reset = lambda: state.__setitem__("reset", True)
        conn.on_connected = lambda: conn.send(auth + garbage)
        sim.run(until=15)
        outcomes[profile] = "RST (oracle fires)" if state["reset"] else "silence"
    return outcomes


def test_sec9_vmess(benchmark, emit):
    def build():
        return (
            probing_rate("vmess", seed=101),
            probing_rate("shadowsocks", seed=102),
            oracle_outcomes(),
        )

    vmess_rate, ss_rate, oracle = benchmark.pedantic(build, rounds=1,
                                                     iterations=1)
    rows = [
        ("probes per connection (VMess tunnel)", f"{vmess_rate:.2f}"),
        ("probes per connection (Shadowsocks tunnel)", f"{ss_rate:.2f}"),
        ("legacy V2Ray vs crafted probe", oracle["v2ray-legacy"]),
        ("V2Ray v4.23 vs crafted probe", oracle["v2ray-4.23"]),
    ]
    text = (
        banner("Section 9 (future work): the GFW vs VMess")
        + "\n" + render_table(["measurement", "result"], rows)
    )
    emit("sec9_vmess", text)

    assert vmess_rate > 0
    # Same trigger, same order of magnitude.
    assert 0.2 < vmess_rate / ss_rate < 5.0
    assert oracle["v2ray-legacy"].startswith("RST")
    assert oracle["v2ray-4.23"] == "silence"
