"""Figure 11: probing intensity collapses while brdgrd is active.

Paper shape: with legitimate client connections running continuously
(16 every 5 minutes), prober SYNs arrive at a steady rate; within a few
hours of enabling brdgrd, probing drops to (near) zero; it resumes as
soon as brdgrd is disabled.  A control server without brdgrd sees no
such change.
"""

from repro.analysis import banner, render_table


def test_fig11_brdgrd(benchmark, emit, brdgrd_result):
    def build():
        return brdgrd_result.hourly_counts()

    hourly = benchmark(build)
    active_rate, inactive_rate = brdgrd_result.window_rates()
    windows = brdgrd_result.config.brdgrd_windows
    control_total = len(brdgrd_result.control_syn_times)

    def bar(n):
        return "#" * min(n, 40)

    lines = []
    for hour, count in enumerate(hourly):
        t = hour * 3600.0
        tag = "BRDGRD" if any(s <= t < e for s, e in windows) else "      "
        lines.append(f"h{hour:>3} {tag} {count:>4} {bar(count)}")
    text = (
        banner("Figure 11: prober SYNs per hour vs brdgrd state")
        + "\n" + "\n".join(lines)
        + f"\n\nprobes/hour while brdgrd active:   {active_rate:.2f}"
        + f"\nprobes/hour while brdgrd inactive: {inactive_rate:.2f}"
        + f"\ncontrol server total probe SYNs:   {control_total}"
    )
    emit("fig11_brdgrd", text)

    assert inactive_rate > 1.0
    assert active_rate < inactive_rate / 5
    assert control_total > 0
