"""Table 4 and the §4.2 findings from the random-data experiments.

* A single data packet after the handshake suffices to trigger probing,
  even against a sink that never responds (Exp 1.a).
* Low-entropy traffic (Exp 2) draws far fewer probes than high-entropy
  traffic (Exp 1.a) over the same connection count.
* Sink-mode servers never draw stage-2 probes (R3/R4/R5).
"""

from repro.analysis import banner, render_table
from repro.experiments import TABLE4_EXPERIMENTS
from repro.gfw import ProbeType


def test_table4_random_experiments(benchmark, emit, sink_1a, sink_2, sink_3):
    results = {"1.a": sink_1a, "2": sink_2, "3": sink_3}

    def build():
        rows = []
        for exp_id, res in results.items():
            params = TABLE4_EXPERIMENTS[exp_id]
            lo, hi = params["entropy_range"]
            rows.append((
                f"Exp {exp_id}",
                f"[{params['length_range'][0]}, {params['length_range'][1]}]",
                f"[{lo:g}, {hi:g}]",
                params["mode"],
                len(res.sent_payloads),
                len(res.probe_log),
            ))
        return rows

    rows = benchmark(build)
    text = (
        banner("Table 4: random-data experiments (plus probe yield)")
        + "\n" + render_table(
            ["Exp", "len (bytes)", "entropy", "mode", "connections", "probes drawn"],
            rows)
    )
    emit("table4_random_experiments", text)

    # Sink servers get probed at all: a single data packet suffices.
    assert len(sink_1a.probe_log) > 50
    # Entropy matters: Exp 2 yields far fewer probes per connection.
    rate_1a = len(sink_1a.probe_log) / len(sink_1a.sent_payloads)
    rate_2 = len(sink_2.probe_log) / len(sink_2.sent_payloads)
    assert rate_2 < rate_1a / 2
    # No stage-2 probe types against pure sinks.
    for res in (sink_1a, sink_2, sink_3):
        types = set(res.probes_by_type())
        assert not types & {ProbeType.R3, ProbeType.R4, ProbeType.R5, ProbeType.NR1}
