"""§5.2.2: what an attacker learns from random-probe statistics.

For each server model, run the probe-length schedule and report the
inferred construction, IV/salt length, ATYP masking, and the compatible
implementation set — the paper's claimed identification power.
"""

from repro.analysis import banner, render_table
from repro.probesim import (
    PROBE_LENGTH_SCHEDULE,
    build_random_probe_row,
    identify_server,
)

CASES = [
    ("ss-libev-3.1.3", "chacha20", 10),
    ("ss-libev-3.1.3", "chacha20-ietf", 10),
    ("ss-libev-3.1.3", "aes-256-ctr", 10),
    ("ss-libev-3.1.3", "aes-128-gcm", 3),
    ("ss-libev-3.1.3", "aes-192-gcm", 3),
    ("ss-libev-3.3.1", "aes-256-gcm", 3),
    ("outline-1.0.6", "chacha20-ietf-poly1305", 3),
    ("outline-1.0.7", "chacha20-ietf-poly1305", 3),
]


def test_sec522_identification(benchmark, emit):
    def build():
        out = []
        for profile, method, trials in CASES:
            row = build_random_probe_row(profile, method,
                                         PROBE_LENGTH_SCHEDULE,
                                         trials=trials, seed=53)
            out.append((profile, method, identify_server(row)))
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = []
    for profile, method, ident in results:
        rows.append((
            profile, method,
            ident.construction or "?",
            ident.nonce_len if ident.nonce_len is not None else "?",
            {True: "yes", False: "no", None: "?"}[ident.masks_atyp],
            ident.cipher_hint or "-",
            len(ident.compatible_profiles),
        ))
    text = (
        banner("Section 5.2.2: server identification from probe reactions")
        + "\n" + render_table(
            ["truth profile", "truth method", "inferred", "IV/salt",
             "masks?", "cipher hint", "#compatible"], rows)
    )
    emit("sec522_identification", text)

    for profile, method, ident in results:
        assert profile in ident.compatible_profiles, (profile, ident)
        if profile == "ss-libev-3.1.3":  # old: rich identification
            from repro.crypto import get_spec

            assert ident.nonce_len == get_spec(method).iv_len
        if method == "chacha20-ietf" and profile.endswith("3.1.3"):
            assert ident.cipher_hint == "chacha20-ietf"
        if profile == "outline-1.0.6":
            assert ident.compatible_profiles == ["outline-1.0.6"]
