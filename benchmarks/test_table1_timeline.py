"""Table 1: timeline of all major experiments.

The paper's Table 1 records the span of each measurement campaign.  Here
the three harnesses report the simulated span they covered, scaled down
from the paper's wall-clock months to keep a pure-Python run fast.
"""

from repro.analysis import banner, render_table

PAPER_SPANS = {
    "Shadowsocks": "Sept 29, 2019 - Jan 21, 2020 (4 months)",
    "Sink": "May 16 - 31, 2020 (2 weeks)",
    "Brdgrd": "Nov 2 - 19, 2019 (403 hours)",
}


def test_table1_timeline(benchmark, emit, ss_result, sink_1a, brdgrd_result):
    def build():
        rows = [
            ("Shadowsocks", PAPER_SPANS["Shadowsocks"],
             f"{ss_result.config.duration / 86400:.0f} simulated days, "
             f"{ss_result.connections_made} connections"),
            ("Sink", PAPER_SPANS["Sink"],
             f"{sink_1a.config.duration / 3600:.0f} simulated hours, "
             f"{len(sink_1a.sent_payloads)} connections"),
            ("Brdgrd", PAPER_SPANS["Brdgrd"],
             f"{brdgrd_result.config.duration / 3600:.0f} simulated hours, "
             f"{len(brdgrd_result.probe_syn_times)} probe SYNs observed"),
        ]
        return render_table(["Experiment", "Paper time span", "This reproduction"], rows)

    table = benchmark(build)
    emit("table1_timeline", banner("Table 1: experiment timeline") + "\n" + table)
    assert "Shadowsocks" in table
