"""§6: the GFW's blocking module.

Paper observations reproduced:

* every vantage point is probed intensively, yet only a small fraction
  is blocked;
* the blocked servers ran ShadowsocksR / Shadowsocks-python;
* blocking is by port or by whole IP, drops only the server->client
  direction, and happens during politically sensitive periods;
* unblocking is silent — no recheck probes precede it.
"""

from repro.analysis import banner, render_table


def test_sec6_blocking(benchmark, emit, blocking_result):
    def build():
        rows = []
        for ip, profile in blocking_result.server_profiles.items():
            events = [e for e in blocking_result.block_events if e.ip == ip]
            how = "-"
            when = "-"
            if events:
                how = "by IP" if events[0].port is None else "by port"
                when = f"{events[0].time / 3600:.1f} h"
            rows.append((ip, profile,
                         blocking_result.probes_per_server.get(ip, 0),
                         how, when))
        return rows

    rows = benchmark(build)
    text = (
        banner("Section 6: probing vs blocking per vantage point")
        + "\n" + render_table(
            ["server", "implementation", "probes", "blocked", "when"], rows)
        + f"\n\nblocked fraction: {blocking_result.blocked_fraction:.0%}"
          " (paper: 3 of 63 vantage points)"
    )
    emit("sec6_blocking", text)

    # Everyone probed; few blocked; only the vulnerable implementations.
    assert all(n > 0 for n in blocking_result.probes_per_server.values())
    assert 0 < blocking_result.blocked_fraction < 0.5
    assert set(blocking_result.blocked_profiles) <= {"ssr", "ss-python"}
    # Blocks land inside the sensitive window (human-gated).
    for event in blocking_result.block_events:
        assert any(
            start <= event.time < end
            for start, end in blocking_result.config.sensitive_periods
        )
