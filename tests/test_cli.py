"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_profiles_command(capsys):
    assert main(["profiles"]) == 0
    out = capsys.readouterr().out
    assert "ss-libev-3.1.3" in out
    assert "outline-1.1.0" in out
    assert "replay_filter=yes" in out


def test_ciphers_command(capsys):
    assert main(["ciphers"]) == 0
    out = capsys.readouterr().out
    assert "chacha20-ietf-poly1305" in out
    assert "salt=32" in out


def test_probesim_command(capsys):
    assert main(["probesim", "--profile", "outline-1.0.6",
                 "--method", "chacha20-ietf-poly1305",
                 "--trials", "2", "--lengths", "49", "50", "51"]) == 0
    out = capsys.readouterr().out
    assert "FIN/ACK" in out
    assert "RST" in out


def test_identify_command(capsys):
    assert main(["identify", "--profile", "ss-libev-3.1.3",
                 "--method", "aes-128-gcm", "--trials", "2"]) == 0
    out = capsys.readouterr().out
    assert "construction:     aead" in out
    assert "IV/salt length:   16" in out


def test_sink_command(capsys):
    assert main(["sink", "--experiment", "1.a", "--connections", "400",
                 "--hours", "4"]) == 0
    out = capsys.readouterr().out
    assert "Exp 1.a" in out
    assert "400 connections" in out


def test_quickstart_command(capsys):
    assert main(["quickstart", "--connections", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "connections: 4" in out
    assert "flagged:" in out


def test_blocking_command(capsys):
    assert main(["blocking", "--days", "0.5", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "probes=" in out
    assert "ssr" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_parser_lists_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("run", "analyze", "quickstart", "probesim", "identify",
                    "sink", "brdgrd", "blocking", "profiles", "ciphers"):
        assert command in text


def test_run_list_scenarios(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("shadowsocks", "sink", "brdgrd", "blocking",
                 "ablation-defense-matrix"):
        assert name in out


def test_run_without_scenario_shows_list_and_fails(capsys):
    assert main(["run"]) == 2
    assert "sink" in capsys.readouterr().out


def test_run_unknown_scenario(capsys):
    assert main(["run", "no-such-scenario", "--no-cache"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_run_bad_override(capsys):
    assert main(["run", "sink", "--set", "oops"]) == 2
    assert "KEY=VALUE" in capsys.readouterr().err


def test_run_executes_and_caches(tmp_path, capsys):
    argv = ["run", "ablation-detector-features", "--set", "samples=40",
            "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    assert "cache 0 hit / 1 miss" in capsys.readouterr().out
    assert main(argv) == 0
    assert "cache 1 hit / 0 miss" in capsys.readouterr().out


def test_run_json_output(tmp_path, capsys):
    import json

    assert main(["run", "ablation-detector-features", "--seeds", "2",
                 "--set", "samples=40", "--cache-dir", str(tmp_path),
                 "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["scenario"] == "ablation-detector-features"
    assert doc["seeds"] == [0, 1]
    assert len(doc["runs"]) == 2


def test_run_detectors_flag_swaps_pipeline(capsys):
    import json

    assert main(["run", "sink", "--no-cache", "--json",
                 "--set", "connections=10", "--set", "duration=600.0",
                 "--detectors", '{"kind": "entropy", "threshold": 7.2}']) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["runs"][0]["params"]["detectors"] == {
        "kind": "entropy", "threshold": 7.2}


def test_run_detectors_flag_bare_kind(capsys):
    assert main(["run", "sink", "--no-cache",
                 "--set", "connections=5", "--set", "duration=300.0",
                 "--detectors", "vmess"]) == 0
    assert "sink: 1 seed(s)" in capsys.readouterr().out


def test_run_detectors_flag_rejected_without_parameter(capsys):
    assert main(["run", "ablation-detector-features", "--no-cache",
                 "--detectors", "entropy"]) == 2
    assert "no parameter 'detectors'" in capsys.readouterr().err


def test_quickstart_detectors_flag(capsys):
    assert main(["quickstart", "--connections", "3", "--seed", "3",
                 "--detectors", "entropy"]) == 0
    out = capsys.readouterr().out
    assert "connections: 3" in out
    assert "flagged: 3" in out


def test_run_shards_executes_and_merges(capsys):
    assert main(["run", "scale-1m", "--shards", "2", "--no-cache",
                 "--set", "flows=1000", "--set", "block_size=128"]) == 0
    out = capsys.readouterr().out
    assert "shards=2" in out
    assert "gfw.flow.opened" in out


def test_run_shards_matches_serial_run(tmp_path, capsys):
    import json

    argv = ["run", "scale-1m", "--set", "flows=1000",
            "--set", "block_size=128", "--cache-dir", str(tmp_path),
            "--json"]
    assert main(argv) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(argv + ["--shards", "2"]) == 0
    sharded = json.loads(capsys.readouterr().out)
    # Identical modulo the recorded shard layout in params.
    assert sharded["params"].pop("shards")["count"] == 2
    for run in sharded["runs"]:
        run["params"].pop("shards")
    assert sharded == serial


def test_run_shards_auto(capsys):
    assert main(["run", "scale-1m", "--shards", "auto", "--no-cache",
                 "--set", "flows=500", "--set", "block_size=64"]) == 0
    assert "scale-1m: 1 seed(s), shards=" in capsys.readouterr().out


def test_run_shards_bad_values(capsys):
    assert main(["run", "scale-1m", "--shards", "zero",
                 "--no-cache"]) == 2
    assert "--shards" in capsys.readouterr().err
    assert main(["run", "scale-1m", "--shards", "0", "--no-cache"]) == 2
    assert ">= 1" in capsys.readouterr().err


def test_run_shards_non_shardable_scenario(capsys):
    assert main(["run", "sink", "--shards", "2", "--no-cache"]) == 2
    err = capsys.readouterr().err
    assert "not shardable" in err
    assert "scale-1m" in err           # the error lists the alternatives


def test_quickstart_shards_partition_the_workload(capsys):
    assert main(["quickstart", "--connections", "6", "--seed", "3",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shard 0/2" in out and "shard 1/2" in out
    assert "total over 2 shard(s): tracked=6" in out


def test_bench_shard_suite(tmp_path, capsys):
    import json

    assert main(["bench", "--suite", "shard", "--quick",
                 "--out-dir", str(tmp_path)]) == 0
    doc = json.loads((tmp_path / "BENCH_shard.json").read_text())
    names = {entry["name"] for entry in doc}
    assert {"shard.events_per_s.w1", "shard.events_per_s.w2",
            "shard.aggregate_events_per_s.w1",
            "shard.aggregate_events_per_s.w2",
            "shard.packets_per_s.w1", "shard.packets_per_s.w2"} <= names
    assert all(entry["value"] > 0 for entry in doc)
    assert all(entry["params"]["flows"] == 20000 for entry in doc)


def test_bench_detector_suite(tmp_path, capsys):
    import json

    assert main(["bench", "--suite", "detector", "--quick",
                 "--out-dir", str(tmp_path)]) == 0
    doc = json.loads((tmp_path / "BENCH_detector.json").read_text())
    names = {entry["name"] for entry in doc}
    assert {"detector.passive", "detector.entropy", "detector.vmess",
            "detector.ensemble", "detector.passive_batch"} <= names
    assert all(entry["unit"] == "flags/s" for entry in doc)
    assert all(entry["value"] > 0 for entry in doc)


def test_bench_appends_history_lines(tmp_path, capsys):
    import json

    # Every bench run appends one JSONL line per entry under the chosen
    # out-dir; a second run appends (never truncates).
    assert main(["bench", "--suite", "sim", "--quick",
                 "--out-dir", str(tmp_path)]) == 0
    history = tmp_path / "benchmarks" / "history.jsonl"
    lines = history.read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert set(rec) == {"name", "value", "git_rev", "timestamp"}
    assert rec["name"] == "sim.event_loop"
    assert rec["value"] > 0
    assert isinstance(rec["timestamp"], int)
    assert main(["bench", "--suite", "sim", "--quick",
                 "--out-dir", str(tmp_path)]) == 0
    assert len(history.read_text().splitlines()) == 2
