"""pcap export/import: wire-accurate serialization of captures."""

import struct

import pytest

from repro.net import Flags, Host, Network, Segment, Simulator
from repro.net.capture import CaptureRecord
from repro.net.pcapfile import (
    _checksum,
    export_capture,
    packet_to_segment,
    read_pcap,
    segment_to_packet,
    write_pcap,
)


def sample_segment(**over):
    base = dict(
        src_ip="192.0.2.1", dst_ip="198.51.100.2", src_port=43210,
        dst_port=8388, flags=Flags.PSH | Flags.ACK, seq=1000, ack=2000,
        payload=b"hello wire", window=29200, ttl=48, ip_id=777,
        tsval=123456, tsecr=654321,
    )
    base.update(over)
    return Segment(**base)


def test_roundtrip_all_fields():
    seg = sample_segment()
    back = packet_to_segment(segment_to_packet(seg), timestamp=1.5)
    for field in ("src_ip", "dst_ip", "src_port", "dst_port", "flags", "seq",
                  "ack", "payload", "window", "ttl", "ip_id", "tsval", "tsecr"):
        assert getattr(back, field) == getattr(seg, field), field
    assert back.timestamp == 1.5


def test_roundtrip_without_timestamps():
    seg = sample_segment(tsval=None, tsecr=None, flags=Flags.RST)
    back = packet_to_segment(segment_to_packet(seg))
    assert back.tsval is None and back.tsecr is None
    assert back.flags == Flags.RST


def test_ip_checksum_valid():
    packet = segment_to_packet(sample_segment())
    assert _checksum(packet[:20]) == 0  # checksum over header incl. field = 0


def test_tcp_checksum_valid():
    seg = sample_segment()
    packet = segment_to_packet(seg)
    pseudo = packet[12:20] + bytes([0, 6]) + struct.pack(">H", len(packet) - 20)
    assert _checksum(pseudo + packet[20:]) == 0


def test_packet_parsing_validates():
    with pytest.raises(ValueError):
        packet_to_segment(b"short")
    bad_version = bytearray(segment_to_packet(sample_segment()))
    bad_version[0] = 0x65
    with pytest.raises(ValueError):
        packet_to_segment(bytes(bad_version))


def test_write_and_read_pcap(tmp_path):
    path = tmp_path / "probes.pcap"
    records = [
        CaptureRecord(time=1.25, sent=False, segment=sample_segment()),
        CaptureRecord(time=2.5, sent=True,
                      segment=sample_segment(flags=Flags.SYN, payload=b"")),
    ]
    assert write_pcap(path, records) == 2
    loaded = read_pcap(path)
    assert len(loaded) == 2
    assert loaded[0][0] == pytest.approx(1.25)
    assert loaded[0][1].payload == b"hello wire"
    assert loaded[1][1].is_syn


def test_read_pcap_validates_magic(tmp_path):
    path = tmp_path / "bad.pcap"
    path.write_bytes(b"\x00" * 24)
    with pytest.raises(ValueError):
        read_pcap(path)


def test_export_live_capture(tmp_path):
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    b.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(d)))
    conn = a.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"ping")
    sim.run(until=5)
    path = tmp_path / "session.pcap"
    count = export_capture(path, b.capture, received_only=True)
    assert count == len(b.capture.received())
    loaded = read_pcap(path)
    payloads = [seg.payload for _, seg in loaded if seg.payload]
    assert payloads == [b"ping"]
