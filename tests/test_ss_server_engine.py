"""Server-engine edge cases: timeouts, drain, buffering, weird targets."""

import random

import pytest

from repro.net import Host, Network, Simulator, TcpState
from repro.shadowsocks import (
    ShadowsocksClient,
    ShadowsocksServer,
    encode_target,
)
from repro.shadowsocks.aead_session import AeadEncryptor, aead_master_key
from repro.shadowsocks.spec import ATYP_IPV6


def make_world(method="aes-256-gcm", profile="ss-libev-3.3.1", **server_kwargs):
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, net, "198.51.100.50", "server")
    client_host = Host(sim, net, "192.0.2.50", "client")
    web = Host(sim, net, "198.18.0.50", "web")
    web.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(b"hi")))
    net.register_name("site.example", web.ip)
    server = ShadowsocksServer(server_host, 8388, "pw", method, profile,
                               **server_kwargs)
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw", method)
    return sim, net, server, client, (server_host, client_host, web)


def test_idle_timeout_closes_stalled_handshake():
    sim, net, server, client, (server_host, client_host, _) = make_world()
    conn = client_host.connect(server_host.ip, 8388)
    fin = []
    conn.on_remote_fin = lambda: fin.append(sim.now)
    conn.on_connected = lambda: conn.send(b"\x01\x02\x03")  # partial salt
    sim.run(until=59)
    assert not fin
    sim.run(until=62)
    assert fin and 59 < fin[0] < 62  # server reaps at its 60 s idle timeout


def test_idle_timer_resets_on_activity():
    sim, net, server, client, (server_host, client_host, _) = make_world()
    conn = client_host.connect(server_host.ip, 8388)
    fin = []
    conn.on_remote_fin = lambda: fin.append(sim.now)
    conn.on_connected = lambda: conn.send(b"\x01")
    sim.schedule(40.0, lambda: conn.send(b"\x02"))  # keep-alive trickle
    sim.run(until=110)
    assert fin
    assert 99 < fin[0] < 102  # closed ~60 s after the *last* data, not the first


def test_drain_state_swallows_everything():
    sim, net, server, client, (server_host, client_host, _) = make_world(
        profile="ss-libev-3.3.1")
    conn = client_host.connect(server_host.ip, 8388)
    got = []
    conn.on_data = got.append
    # Garbage long enough to fail AEAD authentication.
    conn.on_connected = lambda: conn.send(bytes(range(100)))
    sim.run(until=5)
    session = server.sessions[0]
    assert session.state == session.DRAIN
    conn.send(bytes(500))  # more garbage: still silence
    sim.run(until=10)
    assert not got
    assert not conn.reset_received


def test_data_during_connecting_is_buffered_and_forwarded():
    sim, net, server, client, hosts = make_world()
    server_host, client_host, web = hosts
    net.set_latency(server_host.ip, web.ip, 0.5)  # slow dial to the target
    session = client.open("site.example", 80, b"part1 ")
    # This lands while the server is still connecting to the web host.
    sim.schedule(0.3, session.send, b"part2")
    sim.run(until=10)
    # The web app echoes per segment; both parts must have arrived.
    assert bytes(session.reply).startswith(b"hi")
    data_at_web = [r.segment.payload for r in web.capture.received()
                   if r.segment.is_data]
    assert b"".join(data_at_web) == b"part1 part2"


def test_ipv6_target_fails_gracefully():
    sim, net, server, client, (server_host, client_host, _) = make_world()
    master = aead_master_key("pw", "aes-256-gcm")
    enc = AeadEncryptor("aes-256-gcm", master, rng=random.Random(1))
    spec = encode_target("2001:0db8:0000:0000:0000:0000:0000:0001", 80,
                         atyp=ATYP_IPV6)
    conn = client_host.connect(server_host.ip, 8388)
    fin = []
    conn.on_remote_fin = lambda: fin.append(True)
    conn.on_connected = lambda: conn.send(enc.encrypt(spec))
    sim.run(until=10)
    assert fin  # no IPv6 fabric: connect fails -> FIN/ACK


def test_client_rst_during_connecting_aborts_remote():
    sim, net, server, client, hosts = make_world()
    server_host, client_host, web = hosts
    net.set_latency(server_host.ip, web.ip, 1.0)
    session = client.open("site.example", 80, b"x")
    sim.schedule(0.5, session.conn.abort)
    sim.run(until=10)
    assert server.sessions[0].state == server.sessions[0].DONE


def test_server_stop_unlistens():
    sim, net, server, client, (server_host, client_host, _) = make_world()
    server.stop()
    conn = client_host.connect(server_host.ip, 8388)
    sim.run(until=5)
    assert conn.reset_received  # closed port now refuses


def test_fragmented_genuine_handshake_works():
    """A genuine AEAD handshake split into tiny segments still proxies
    (the reassembly case brdgrd forces)."""
    sim, net, server, client, (server_host, client_host, web) = make_world()
    master = aead_master_key("pw", "aes-256-gcm")
    enc = AeadEncryptor("aes-256-gcm", master, rng=random.Random(2))
    wire = enc.encrypt(encode_target("site.example", 80) + b"GET /")
    conn = client_host.connect(server_host.ip, 8388)
    got = bytearray()
    # Collect the encrypted reply; decrypt path is covered elsewhere.
    conn.on_data = got.extend

    def dribble():
        for i in range(0, len(wire), 7):
            sim.schedule(0.1 * i, conn.send, wire[i : i + 7])

    conn.on_connected = dribble
    sim.run(until=60)
    assert got  # server reassembled, proxied, and answered


def test_stream_partial_iv_then_complete():
    sim, net, server, client, (server_host, client_host, web) = make_world(
        method="aes-256-ctr", profile="ss-libev-3.1.3")
    from repro.shadowsocks.stream_session import StreamEncryptor, master_key

    enc = StreamEncryptor("aes-256-ctr", master_key("pw", "aes-256-ctr"),
                          rng=random.Random(3))
    wire = enc.encrypt(encode_target("site.example", 80) + b"GET /")
    conn = client_host.connect(server_host.ip, 8388)
    got = bytearray()
    conn.on_data = got.extend

    def two_parts():
        conn.send(wire[:10])  # less than the 16-byte IV
        sim.schedule(1.0, conn.send, wire[10:])

    conn.on_connected = two_parts
    sim.run(until=30)
    assert got


def test_timed_filter_rejects_stale_legitimate_client():
    """With a freshness window, even a correctly-keyed connection whose
    embedded timestamp is stale gets refused (the VMess-style defense)."""
    sim, net, server, client, (server_host, client_host, _) = make_world(
        timed_replay_window=60.0)
    # Pretend the recorded timestamp registry says this nonce is old.
    master = aead_master_key("pw", "aes-256-gcm")
    enc = AeadEncryptor("aes-256-gcm", master, rng=random.Random(4))
    server.timestamp_registry = {enc.salt: -1000.0}
    wire = enc.encrypt(encode_target("site.example", 80) + b"GET /")
    conn = client_host.connect(server_host.ip, 8388)
    got = []
    conn.on_data = got.append
    conn.on_connected = lambda: conn.send(wire)
    sim.run(until=30)
    assert not got
