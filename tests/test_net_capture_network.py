"""Capture queries, middlebox chaining, and network policies."""

import pytest

from repro.net import Capture, Flags, Host, Middlebox, Network, Segment, Simulator


def seg(src="1.1.1.1", dst="2.2.2.2", sport=1000, dport=80, flags=Flags.SYN,
        payload=b""):
    return Segment(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                   flags=flags, payload=payload)


# ----------------------------------------------------------------- capture


def test_capture_basic_queries():
    cap = Capture()
    cap.record(seg(), 1.0, sent=False)
    cap.record(seg(flags=Flags.PSH | Flags.ACK, payload=b"xy"), 2.0, sent=True)
    assert len(cap) == 2
    assert len(cap.received()) == 1
    assert len(cap.sent()) == 1
    assert len(cap.syns_received()) == 1
    assert len(cap.data_segments()) == 1


def test_capture_disable():
    cap = Capture()
    cap.enabled = False
    cap.record(seg(), 1.0, sent=False)
    assert len(cap) == 0


def test_capture_first_payload_from():
    cap = Capture()
    cap.record(seg(flags=Flags.PSH | Flags.ACK, payload=b"first"), 1.0, False)
    cap.record(seg(flags=Flags.PSH | Flags.ACK, payload=b"second"), 2.0, False)
    assert cap.first_payload_from("1.1.1.1") == b"first"
    assert cap.first_payload_from("9.9.9.9") is None


def test_capture_connections_grouping():
    cap = Capture()
    cap.record(seg(), 1.0, False)
    reply = seg(src="2.2.2.2", dst="1.1.1.1", sport=80, dport=1000,
                flags=Flags.SYN | Flags.ACK)
    cap.record(reply, 1.1, True)
    cap.record(seg(src="3.3.3.3"), 2.0, False)
    groups = cap.connections()
    assert len(groups) == 2


def test_capture_clear():
    cap = Capture()
    cap.record(seg(), 1.0, False)
    cap.clear()
    assert len(cap) == 0


# -------------------------------------------------------------- middleboxes


class Dropper(Middlebox):
    def __init__(self, match_port):
        self.match_port = match_port
        self.dropped = 0

    def process(self, segment, network):
        if segment.dst_port == self.match_port:
            self.dropped += 1
            return []
        return [segment]


class Tagger(Middlebox):
    """Rewrites TTL, to verify ordering of the chain."""

    def process(self, segment, network):
        return [segment.copy(ttl=100)]


def test_middlebox_drop():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    b.listen(80, lambda c: None)
    dropper = Dropper(80)
    net.add_middlebox(dropper)
    conn = a.connect("10.0.0.2", 80)
    sim.run(until=10)
    assert dropper.dropped > 0
    assert conn.state == "SYN_SENT"  # SYN never got through
    assert net.segments_dropped > 0


def test_middlebox_chain_order():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    b.listen(80, lambda c: None)
    net.add_middlebox(Tagger())
    a.connect("10.0.0.2", 80)
    sim.run(until=1)
    received = b.capture.received()
    expected = 100 - net.hops("10.0.0.1", "10.0.0.2")
    assert received and all(r.segment.ttl == expected for r in received)


def test_remove_middlebox():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    b.listen(80, lambda c: None)
    dropper = Dropper(80)
    net.add_middlebox(dropper)
    net.remove_middlebox(dropper)
    conn = a.connect("10.0.0.2", 80)
    ok = []
    conn.on_connected = lambda: ok.append(True)
    sim.run(until=5)
    assert ok


# ------------------------------------------------------------------ network


def test_unreachable_refuse_policy():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    conn = a.connect("10.9.9.9", 80)
    sim.run(until=5)
    assert conn.reset_received


def test_unreachable_drop_policy():
    sim = Simulator()
    net = Network(sim, unreachable_policy="drop")
    a = Host(sim, net, "10.0.0.1")
    conn = a.connect("10.9.9.9", 80)
    sim.run(until=5)
    assert not conn.reset_received
    assert conn.state == "SYN_SENT"


def test_bad_unreachable_policy():
    with pytest.raises(ValueError):
        Network(Simulator(), unreachable_policy="bounce")


def test_dns_registry():
    net = Network(Simulator())
    net.register_name("example.com", "1.2.3.4")
    assert net.resolve("example.com") == "1.2.3.4"
    assert net.resolve("nope.invalid") is None


def test_latency_configuration():
    sim = Simulator()
    net = Network(sim)
    net.set_latency("10.0.0.1", "10.0.0.2", 0.5)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    b.listen(80, lambda c: None)
    a.connect("10.0.0.2", 80)
    sim.run(until=0.4)
    assert len(b.capture.received()) == 0  # still in flight
    sim.run(until=0.6)
    assert len(b.capture.received()) == 1


def test_duplicate_ip_rejected():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "10.0.0.1")
    with pytest.raises(ValueError):
        Host(sim, net, "10.0.0.1")


def test_register_extra_ip_collision_rejected():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    with pytest.raises(ValueError):
        net.register_extra_ip(a, "10.0.0.2")


def test_wildcard_hops():
    sim = Simulator()
    net = Network(sim)
    net.set_hops("10.0.0.1", "*", 20)
    assert net.hops("10.0.0.1", "anything") == 20
    assert net.hops("10.0.0.2", "x") == Network.DEFAULT_HOPS
    net.set_hops("10.0.0.1", "10.0.0.9", 3)
    assert net.hops("10.0.0.1", "10.0.0.9") == 3  # exact beats wildcard
