"""Property-based tests of the TCP model: integrity under arbitrary traffic."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Host, Network, Simulator


def build_pair(window):
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    received = bytearray()

    def app(conn):
        conn.rcv_window = window
        conn.on_data = received.extend
        conn.on_remote_fin = conn.close

    b.listen(80, app)
    return sim, a, received


@given(
    writes=st.lists(st.integers(min_value=1, max_value=4000), min_size=1,
                    max_size=8),
    window=st.integers(min_value=1, max_value=70000),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_all_bytes_delivered_in_order(writes, window, seed):
    """Whatever the write pattern and receive window, every byte arrives
    exactly once and in order."""
    sim, a, received = build_pair(window)
    rng = random.Random(seed)
    blob = bytes(rng.randrange(256) for _ in range(sum(writes)))
    conn = a.connect("10.0.0.2", 80)
    offset = 0
    chunks = []
    for size in writes:
        chunks.append(blob[offset : offset + size])
        offset += size

    def send_all():
        for i, chunk in enumerate(chunks):
            sim.schedule(i * 0.01, conn.send, chunk)
        sim.schedule(len(chunks) * 0.01 + 0.01, conn.close)

    conn.on_connected = send_all
    # No wall-clock bound: a window-1 receiver drains one MSS per RTT, so
    # large blobs legitimately need arbitrarily long.  Run to quiescence.
    sim.run_until_idle()
    assert bytes(received) == blob


@given(
    writes=st.lists(st.integers(min_value=1, max_value=500), min_size=1,
                    max_size=5),
    window=st.integers(min_value=1, max_value=300),
)
@settings(max_examples=30, deadline=None)
def test_segments_never_exceed_window_or_mss(writes, window):
    sim, a, received = build_pair(window)
    conn = a.connect("10.0.0.2", 80)

    def send_all():
        for i, size in enumerate(writes):
            sim.schedule(i * 0.01, conn.send, bytes(size))

    conn.on_connected = send_all
    sim.run(until=600)
    for rec in a.capture.sent():
        seg = rec.segment
        if seg.is_data:
            assert len(seg.payload) <= min(conn.MSS, window)
    assert len(received) == sum(writes)


@given(close_at=st.floats(min_value=0.0, max_value=2.0),
       size=st.integers(min_value=1, max_value=3000))
@settings(max_examples=30, deadline=None)
def test_abort_any_time_never_crashes(close_at, size):
    sim, a, received = build_pair(65535)
    conn = a.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(bytes(size))
    sim.schedule(close_at, conn.abort)
    sim.run(until=600)
    assert conn.state == "CLOSED"
