"""Property tests for flow-sharded single-scenario execution.

Three invariants anchor the sharding refactor:

1. **Seed-stable keying.**  :func:`~repro.runtime.sharding.flow_key` is
   a pure function of its arguments — never of ``PYTHONHASHSEED``, the
   interpreter run, or dict order — so shard assignment is identical
   across processes and machine restarts.
2. **Sharded == serial.**  Running any shardable scenario partitioned
   into N shards and merging the per-shard results must reproduce the
   serial run byte-for-byte (canonical JSON), modulo only the recorded
   shard layout in ``params``.
3. **Distinct cache identities.**  A cached serial result must never
   satisfy a ``--shards N`` request, and vice versa: the shard layout
   is part of the execution identity.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    ResultCache,
    ShardingError,
    run_scenario,
    run_sharded,
)
from repro.runtime.scenario import canonical_json, get_scenario
from repro.runtime.sharding import (
    derive_seed,
    flow_key,
    fold_snapshots,
    partition,
    shard_of,
)

# Deliberately small parameterizations (minutes of sim, thousands of
# flows) so the whole module stays tier-1 friendly.  Every scenario that
# declares a Sharder must appear here — a registry test enforces it.
SHARDABLE_OVERRIDES = {
    "probesim-grid": {"trials": 1, "profiles": ["ss-libev-3.1.3"],
                      "methods": ["aes-128-gcm", "aes-256-ctr"],
                      "lengths": [1, 2, 50]},
    "probesim-replay": {"trials": 1,
                        "pairs": [["ss-libev-3.1.3", "aes-256-ctr"],
                                  ["outline-1.0.7",
                                   "chacha20-ietf-poly1305"]]},
    "impairment-matrix": {"loss_rates": [0.0, 0.01],
                          "reorder_rates": [0.0],
                          "connections": 5, "duration": 1800.0},
    "ablation-defense-matrix": {"connections": 4, "duration": 1800.0},
    "ablation-detector-ensemble": {
        "connections": 4, "duration": 1800.0,
        "cases": [["passive", {"kind": "passive", "base_rate": 1.0}],
                  ["entropy", {"kind": "entropy", "threshold": 7.2}],
                  ["vmess", "vmess"]]},
    "scale-1m": {"flows": 2000, "block_size": 256},
}

# ------------------------------------------------------ seed-stable keys

# Golden values: these are the blake2b-derived keys as of the sharding
# module's introduction.  They must never change — cached shard layouts
# and cross-process shard assignment both depend on them.
GOLDEN_KEYS = {
    ("10.0.0.1", 1234, "203.0.113.5", 8388): 4042156279641814704,
    (0, 0): 6414683138966711611,
    ("block-00000",): 10014109999170049474,
    (b"bytes", 3.5, None, True, ("a", 1)): 2558566929059553529,
}


def test_flow_key_golden_values():
    for parts, expected in GOLDEN_KEYS.items():
        assert flow_key(*parts) == expected


def test_derive_seed_golden_value():
    assert derive_seed(7, "case-a") == 759313167
    assert 0 <= derive_seed(7, "case-a") < (1 << 31)


def test_partition_golden_layout():
    labels = [f"u{i}" for i in range(8)]
    assert partition(labels, 3) == [
        ["u5"], ["u0", "u1", "u3", "u4", "u6"], ["u2", "u7"]]


_SUBPROCESS_SNIPPET = """
from repro.runtime.sharding import flow_key, partition
print(flow_key('10.0.0.1', 1234, '203.0.113.5', 8388))
print(flow_key(0, 0))
print(partition(['u%d' % i for i in range(8)], 3))
"""


def _run_with_hashseed(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run([sys.executable, "-c", _SUBPROCESS_SNIPPET],
                          capture_output=True, text=True, env=env,
                          check=True)
    return proc.stdout


def test_flow_key_stable_across_interpreter_restarts():
    """Satellite 1: identical shard assignment under any PYTHONHASHSEED.

    A fresh interpreter with randomized (and with pinned) string
    hashing must produce the same keys and the same partition as this
    process — i.e. ``flow_key`` never routes through ``hash()``.
    """
    outputs = {_run_with_hashseed(seed) for seed in ("0", "1", "random")}
    assert len(outputs) == 1
    lines = outputs.pop().strip().splitlines()
    assert int(lines[0]) == GOLDEN_KEYS[("10.0.0.1", 1234, "203.0.113.5",
                                         8388)]
    assert int(lines[1]) == GOLDEN_KEYS[(0, 0)]
    assert lines[2] == str(partition([f"u{i}" for i in range(8)], 3))


@given(parts=st.lists(
    st.one_of(st.integers(-2**40, 2**40), st.text(max_size=20),
              st.binary(max_size=20), st.booleans(), st.none(),
              st.floats(allow_nan=False)),
    min_size=1, max_size=5))
@settings(max_examples=200, deadline=None)
def test_flow_key_is_deterministic_and_type_sensitive(parts):
    key = flow_key(*parts)
    assert key == flow_key(*parts)
    assert 0 <= key < (1 << 64)
    # Tuple nesting changes the encoding: key(a, b) != key((a, b)).
    assert flow_key(tuple(parts)) != key


@given(labels=st.lists(st.text(min_size=1, max_size=12), unique=True,
                       min_size=1, max_size=40),
       count=st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_partition_covers_disjointly_in_order(labels, count):
    layout = partition(labels, count)
    assert len(layout) == count
    flat = [label for shard in layout for label in shard]
    assert sorted(flat) == sorted(labels)          # disjoint cover
    for index, shard in enumerate(layout):
        # Membership agrees with the key hash, order with the input.
        assert shard == [label for label in labels
                         if shard_of(flow_key(label), count) == index]


# ------------------------------------------------- sharded == serial

SHARD_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("name", sorted(SHARDABLE_OVERRIDES))
def test_sharded_merge_is_byte_identical_to_serial(name):
    """Satellite 3: serial == merged-sharded for every shardable builtin."""
    overrides = SHARDABLE_OVERRIDES[name]
    serial = run_scenario(name, seed=0, overrides=overrides,
                          use_cache=False)
    expected = canonical_json(serial.identity()).encode("utf-8")
    for shards in SHARD_COUNTS:
        sharded = run_sharded(name, seed=0, overrides=overrides,
                              shards=shards, jobs=1, use_cache=False)
        assert sharded.canonical_bytes() == expected, (
            f"{name} diverged at shards={shards}")


def test_sharded_multiprocess_matches_in_process():
    """The process-pool path merges to the same bytes as jobs=1."""
    overrides = SHARDABLE_OVERRIDES["scale-1m"]
    one = run_sharded("scale-1m", seed=0, overrides=overrides,
                      shards=2, jobs=1, use_cache=False)
    pooled = run_sharded("scale-1m", seed=0, overrides=overrides,
                         shards=2, jobs=2, use_cache=False)
    assert pooled.canonical_bytes() == one.canonical_bytes()
    assert pooled.merged.params["shards"]["count"] == 2


def test_every_sharder_declaring_scenario_is_covered():
    from repro.runtime.scenario import all_scenarios

    shardable = {s.name for s in all_scenarios() if s.sharder is not None}
    assert shardable == set(SHARDABLE_OVERRIDES)


def test_non_shardable_scenario_raises():
    with pytest.raises(ShardingError, match="not shardable"):
        run_sharded("sink", shards=2, use_cache=False)
    with pytest.raises(ShardingError, match=">= 1"):
        run_sharded("scale-1m", shards=0, use_cache=False)


def test_layout_restriction_is_honoured_per_shard():
    """Each shard's world only executes (and reports) its own units."""
    overrides = SHARDABLE_OVERRIDES["ablation-detector-ensemble"]
    sharded = run_sharded("ablation-detector-ensemble", seed=0,
                          overrides=overrides, shards=2, jobs=1,
                          use_cache=False)
    for result, owned in zip(sharded.shards,
                             [s for s in sharded.layout if s]):
        assert sorted(result.events["units"]) == sorted(owned)
        assert sorted(result.payload["cases"]) == sorted(owned)


# ------------------------------------------------- cache-key isolation


def test_serial_cache_never_serves_sharded_requests(tmp_path):
    """Satellite 2: the shard layout is part of the cache identity."""
    overrides = SHARDABLE_OVERRIDES["scale-1m"]
    cache = ResultCache(tmp_path)
    serial = run_scenario("scale-1m", seed=0, overrides=overrides,
                          cache=cache, use_cache=True)
    assert not serial.cache_hit

    sharded = run_sharded("scale-1m", seed=0, overrides=overrides,
                          shards=2, jobs=1, cache=cache, use_cache=True)
    # Nothing the serial run cached may satisfy the sharded request:
    # not the merged result, not any per-shard job.
    assert not sharded.merged.cache_hit
    assert all(not r.cache_hit for r in sharded.shards)
    assert sharded.merged.params["shards"] == {
        "count": 2, "layout": sharded.layout}
    for result in sharded.shards:
        assert result.params["shards"]["count"] == 2

    # Re-running the same sharded request hits its own merged entry...
    again = run_sharded("scale-1m", seed=0, overrides=overrides,
                        shards=2, jobs=1, cache=cache, use_cache=True)
    assert again.merged.cache_hit
    assert again.canonical_bytes() == sharded.canonical_bytes()
    # ...a different layout misses it...
    other = run_sharded("scale-1m", seed=0, overrides=overrides,
                        shards=4, jobs=1, cache=cache, use_cache=True)
    assert not other.merged.cache_hit
    # ...and the serial entry is still served only to serial requests.
    serial_again = run_scenario("scale-1m", seed=0, overrides=overrides,
                                cache=cache, use_cache=True)
    assert serial_again.cache_hit
    assert "shards" not in serial_again.params


# ------------------------------------------------------- merge helpers


def test_fold_snapshots_reproduces_bus_fold():
    from repro.runtime.events import EventBus

    buses = []
    for i in range(3):
        bus = EventBus()
        bus.incr("n", i + 1)
        bus.observe("x", 0.1 * (i + 1))
        buses.append(bus)
    reference = EventBus()
    snaps = [bus.snapshot() for bus in buses]
    for bus in buses:
        reference.absorb(bus)
    folded = fold_snapshots(snaps)
    assert folded == json.loads(canonical_json(reference.snapshot()))


def test_flow_sharded_scalars_are_rejected():
    """Flows-mode merging refuses order-dependent scalar series."""
    from repro.runtime.runner import _merge_flows
    from repro.runtime.scenario import RunResult
    from repro.runtime.sharding import Sharder

    result = RunResult(
        scenario="scale-1m", params={}, seed=0, payload={},
        events={"counters": {}, "scalars": {"t": {"count": 1, "sum": 1.0,
                                                  "min": 1.0, "max": 1.0}}},
        wall_time=0.0, fingerprint="x", analysis={})
    sharder = get_scenario("scale-1m").sharder
    assert isinstance(sharder, Sharder)
    with pytest.raises(ShardingError, match="scalar"):
        _merge_flows([result], sharder)
