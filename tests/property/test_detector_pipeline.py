"""Detector-pipeline invariants: default byte-identity, ensemble determinism.

The tentpole refactor split the monolithic firewall into sensor →
detector → reaction layers.  Two invariants anchor it:

1. **Default byte-identity.**  A world built with no ``detectors`` spec
   and one built with the equivalent explicit ``passive`` spec must
   produce byte-identical traces — same segments, same RNG-dependent
   probe schedule, same bus counters.
2. **Swapped pipelines stay deterministic.**  Any detector spec, run
   twice with the same seed, reproduces its full trace; verdict records
   surface on the analysis channel end to end.
"""

import random

from repro.gfw import DetectorConfig
from repro.runtime import run_scenario
from repro.runtime.topology import build_world
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver


def _trace(world):
    """A byte-comparable rendition of everything observable in a world."""
    segments = [
        (rec.time, rec.sent, rec.segment.flags, rec.segment.seq,
         rec.segment.ack, rec.segment.payload, rec.segment.ttl,
         rec.segment.ip_id, rec.segment.tsval)
        for host in world.hosts.values()
        for rec in host.capture
    ]
    return (segments, world.bus.snapshot(), world.gfw.flagged_connections,
            len(world.gfw.probe_log), world.net.segments_delivered)


def _run_workload(detectors, detector_config=None, seed=5):
    world = build_world(seed=seed,
                        detector_config=detector_config,
                        detectors=detectors,
                        websites=["example.com"])
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                      "ss-libev-3.3.1", rng=random.Random(6))
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "chacha20-ietf-poly1305", rng=random.Random(7))
    CurlDriver(client, rng=random.Random(8),
               sites=["example.com"]).run_schedule(5, 30.0)
    world.sim.run(until=1800.0)
    return _trace(world)


def test_default_pipeline_byte_identical_to_explicit_passive_spec():
    config = DetectorConfig(base_rate=1.0)
    baseline = _run_workload(None, detector_config=config)
    explicit = _run_workload({"kind": "passive", "base_rate": 1.0})
    assert baseline == explicit


def test_swapped_pipeline_reproducible_per_seed():
    spec = {"kind": "any",
            "members": [{"kind": "entropy", "threshold": 7.2}, "vmess"]}
    assert _run_workload(spec) == _run_workload(spec)


def test_ensemble_ablation_scenario_surfaces_verdict_records():
    overrides = {"connections": 5, "duration": 600.0, "interval": 20.0,
                 "cases": [["entropy", {"kind": "entropy", "threshold": 7.2}],
                           ["union", {"kind": "any",
                                      "members": ["entropy", "vmess"]}]]}
    result = run_scenario("ablation-detector-ensemble", seed=1,
                          overrides=overrides, use_cache=False)
    cases = result.payload["cases"]
    assert set(cases) == {"entropy", "union"}
    for label, case in cases.items():
        section = result.analysis[f"{label}:verdicts"]
        assert section["analyzer"] == "verdict_records"
        assert section["output"]["count"] == case["verdicts"]
        assert case["verdicts"] == case["flagged"] > 0
        assert sum(case["by_stage"].values()) == case["verdicts"]
    # The deciding stage is recorded per verdict.
    assert set(cases["entropy"]["by_stage"]) == {"entropy"}
    assert set(cases["union"]["by_stage"]) == {"any"}


def test_ensemble_ablation_deterministic_across_runs():
    overrides = {"connections": 4, "duration": 400.0, "interval": 20.0}
    a = run_scenario("ablation-detector-ensemble", seed=2,
                     overrides=overrides, use_cache=False)
    b = run_scenario("ablation-detector-ensemble", seed=2,
                     overrides=overrides, use_cache=False)
    assert a.identity() == b.identity()
