"""Property-based tests over the GFW model and analysis invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ECDF, classify_payload
from repro.gfw import PassiveDetector, ProbeForge, ReplayDelayModel, shannon_entropy
from repro.workloads import payload_with_entropy


@given(data=st.binary(max_size=500))
@settings(max_examples=100, deadline=None)
def test_entropy_bounds(data):
    h = shannon_entropy(data)
    assert 0.0 <= h <= 8.0


@given(data=st.binary(min_size=1, max_size=200), seed=st.integers(0, 1000))
@settings(max_examples=50, deadline=None)
def test_entropy_permutation_invariant(data, seed):
    shuffled = list(data)
    random.Random(seed).shuffle(shuffled)
    # Summation order may differ (Counter insertion order), so compare to
    # floating-point tolerance.
    assert abs(shannon_entropy(bytes(shuffled)) - shannon_entropy(data)) < 1e-9


@given(target=st.floats(min_value=0.0, max_value=8.0),
       length=st.integers(min_value=2000, max_value=4000),
       seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_payload_entropy_converges(target, length, seed):
    import math

    rng = random.Random(seed)
    payload = payload_with_entropy(length, target, rng)
    achieved = shannon_entropy(payload)
    # The generator hits log2(round(2^target)) exactly in the limit.
    from repro.workloads import alphabet_size_for_entropy

    expected = math.log2(alphabet_size_for_entropy(target))
    assert abs(achieved - expected) < 0.25


@given(payload=st.binary(max_size=2000))
@settings(max_examples=100, deadline=None)
def test_flag_probability_is_probability(payload):
    p = PassiveDetector().flag_probability(payload)
    assert 0.0 <= p <= 1.0


@given(seed=st.integers(0, 100_000))
@settings(max_examples=100, deadline=None)
def test_delay_model_in_bounds(seed):
    delay = ReplayDelayModel().sample(random.Random(seed))
    assert 0.28 <= delay <= 569.55 * 3600 + 1e-6


@given(x=st.floats(min_value=0.01, max_value=1e7),
       y=st.floats(min_value=0.01, max_value=1e7))
@settings(max_examples=100, deadline=None)
def test_delay_model_cdf_monotone(x, y):
    model = ReplayDelayModel()
    lo, hi = sorted((x, y))
    assert model.cdf(lo) <= model.cdf(hi)


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=200),
       x=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_ecdf_properties(values, x):
    cdf = ECDF(values)
    assert 0.0 <= cdf(x) <= 1.0
    assert cdf(cdf.max) == 1.0
    assert cdf(cdf.min - 1) == 0.0


@given(payload=st.binary(min_size=70, max_size=400), seed=st.integers(0, 1000),
       probe_type=st.sampled_from(["R1", "R2", "R3", "R4", "R5", "R6"]))
@settings(max_examples=60, deadline=None)
def test_forged_replays_classify_as_themselves(payload, seed, probe_type):
    """Classification inverts forging for payloads long enough that the
    mutated offsets exist and distinct from other legit payloads."""
    forge = ProbeForge(random.Random(seed))
    probe = forge.replay(payload, probe_type)
    got, matched = classify_payload(probe.payload, [payload])
    assert got == probe_type
    assert matched == payload
