"""Property-based tests over the crypto substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AESGCM,
    AuthenticationError,
    CTRMode,
    ChaCha20,
    ChaCha20Poly1305,
    evp_bytes_to_key,
    hkdf_sha1,
)

keys128 = st.binary(min_size=16, max_size=16)
keys256 = st.binary(min_size=32, max_size=32)
nonces = st.binary(min_size=12, max_size=12)
payloads = st.binary(min_size=0, max_size=300)


@given(key=keys256, nonce=nonces, plaintext=payloads, aad=st.binary(max_size=64))
@settings(max_examples=40, deadline=None)
def test_chacha20poly1305_roundtrip(key, nonce, plaintext, aad):
    box = ChaCha20Poly1305(key)
    assert box.open(nonce, box.seal(nonce, plaintext, aad), aad) == plaintext


@given(key=keys128, nonce=nonces, plaintext=payloads)
@settings(max_examples=25, deadline=None)
def test_aesgcm_roundtrip(key, nonce, plaintext):
    box = AESGCM(key)
    assert box.open(nonce, box.seal(nonce, plaintext)) == plaintext


@given(key=keys256, nonce=nonces, plaintext=st.binary(min_size=1, max_size=200),
       flip=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_chacha20poly1305_tamper_always_detected(key, nonce, plaintext, flip):
    box = ChaCha20Poly1305(key)
    sealed = bytearray(box.seal(nonce, plaintext))
    index = flip % len(sealed)
    bit = 1 << (flip % 8)
    sealed[index] ^= bit
    with pytest.raises(AuthenticationError):
        box.open(nonce, bytes(sealed))


@given(key=keys256, nonce=nonces, data=st.binary(min_size=1, max_size=500),
       chunks=st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                       max_size=20))
@settings(max_examples=40, deadline=None)
def test_chacha20_chunked_equals_oneshot(key, nonce, data, chunks):
    oneshot = ChaCha20(key, nonce).encrypt(data)
    stream = ChaCha20(key, nonce)
    out = bytearray()
    position = 0
    for size in chunks:
        if position >= len(data):
            break
        out.extend(stream.encrypt(data[position : position + size]))
        position += size
    out.extend(stream.encrypt(data[position:]))
    assert bytes(out) == oneshot


@given(key=keys128, iv=st.binary(min_size=16, max_size=16), data=payloads)
@settings(max_examples=25, deadline=None)
def test_ctr_self_inverse(key, iv, data):
    assert CTRMode(key, iv).decrypt(CTRMode(key, iv).encrypt(data)) == data


@given(password=st.binary(min_size=1, max_size=40),
       length=st.integers(min_value=1, max_value=64))
@settings(max_examples=50, deadline=None)
def test_evp_prefix_property(password, length):
    """Shorter derivations are prefixes of longer ones."""
    full = evp_bytes_to_key(password, 64)
    assert evp_bytes_to_key(password, length) == full[:length]


@given(ikm=st.binary(min_size=1, max_size=64), salt=st.binary(max_size=32),
       info=st.binary(max_size=16),
       length=st.integers(min_value=1, max_value=100))
@settings(max_examples=50, deadline=None)
def test_hkdf_prefix_property(ikm, salt, info, length):
    long = hkdf_sha1(ikm, salt, info, 120)
    assert hkdf_sha1(ikm, salt, info, length) == long[:length]
