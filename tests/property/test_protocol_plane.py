"""Protocol-plane invariants: registry construction changes no bytes.

Two guarantees pin the PR-10 refactor:

* **Golden hashes** — every builtin scenario's canonical result bytes at
  seed 0 (small tier-1 parameterizations) match the sha256 values
  captured *before* scenario builders and experiment harnesses moved to
  ``repro.protocols`` registry construction and before the probing
  engine was extracted into per-protocol behaviours.  Since the pinned
  runs were produced by direct ``ShadowsocksServer(...)`` construction
  and the monolithic scheduler, a match proves registry-built stacks and
  behaviour-dispatched probing are byte-identical on every builtin.
* **Side-by-side identity** — a world built through
  :func:`repro.protocols.build_protocol` and one built by direct
  constructor calls produce identical event-bus snapshots for both the
  Shadowsocks and VMess stacks.
"""

import hashlib
import json
import pathlib
import random

import pytest

from repro.gfw import DetectorConfig
from repro.protocols import build_protocol, get_protocol, protocol_kinds
from repro.runtime import run_scenario
from repro.runtime.topology import build_world
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.vmess import VmessClient, VmessServer
from repro.workloads import CurlDriver

from .test_batched_datapath import SCENARIO_OVERRIDES

GOLDEN_PATH = pathlib.Path(__file__).parent.parent / "data" / "scenario_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def test_golden_table_covers_every_builtin_scenario():
    assert set(GOLDEN) == set(SCENARIO_OVERRIDES)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_scenario_bytes_match_pre_refactor_golden(name):
    result = run_scenario(name, seed=0, overrides=SCENARIO_OVERRIDES[name],
                          use_cache=False)
    digest = hashlib.sha256(result.canonical_bytes()).hexdigest()
    assert digest == GOLDEN[name]


# ------------------------------------------------- side-by-side identity


def _world_snapshot(attach_stack):
    world = build_world(seed=5, detector_config=DetectorConfig(base_rate=1.0),
                        websites=["example.com"])
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    client = attach_stack(server_host, client_host)
    CurlDriver(client, rng=random.Random(13),
               sites=["example.com"]).run_schedule(6, 60.0)
    world.sim.run(until=7200.0)
    return world.bus.snapshot(), [
        (r.time_sent, r.src_ip, r.probe.probe_type, bytes(r.probe.payload),
         r.reaction)
        for r in world.gfw.probe_log
    ]


def test_registry_shadowsocks_identical_to_direct():
    def direct(server_host, client_host):
        ShadowsocksServer(server_host, 8388, "pw", "aes-128-gcm",
                          "ss-libev-3.3.1", rng=random.Random(11))
        return ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                 "aes-128-gcm", rng=random.Random(12))

    def registry(server_host, client_host):
        proto = build_protocol({"kind": "shadowsocks", "password": "pw",
                                "method": "aes-128-gcm",
                                "profile": "ss-libev-3.3.1"})
        proto.make_server(server_host, 8388, rng=random.Random(11))
        return proto.make_client(client_host, server_host.ip, 8388,
                                 rng=random.Random(12))

    assert _world_snapshot(registry) == _world_snapshot(direct)


def test_registry_vmess_identical_to_direct():
    uid = bytes(range(16))

    def direct(server_host, client_host):
        VmessServer(server_host, 10086, uid, "v2ray-legacy",
                    rng=random.Random(11))
        return VmessClient(client_host, server_host.ip, 10086, uid,
                           rng=random.Random(12))

    def registry(server_host, client_host):
        proto = build_protocol({"kind": "vmess", "user_id": uid.hex(),
                                "profile": "v2ray-legacy"})
        proto.make_server(server_host, 10086, rng=random.Random(11))
        return proto.make_client(client_host, server_host.ip, 10086,
                                 rng=random.Random(12))

    assert _world_snapshot(registry) == _world_snapshot(direct)


# --------------------------------------------------------- registry API


def test_spec_round_trips():
    for kind in protocol_kinds():
        proto = get_protocol(kind)
        rebuilt = build_protocol(proto.spec())
        assert rebuilt.spec() == proto.spec()
        assert rebuilt.probe_behavior == proto.probe_behavior
