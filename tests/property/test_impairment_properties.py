"""Impairment invariants: determinism across processes, zero == absent."""

import random

from repro.runtime.topology import build_world
from repro.gfw import DetectorConfig
from repro.net import Impairment
from repro.runtime import run_sweep
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver

SMALL_GRID = {
    "loss_rates": (0.0, 0.02),
    "reorder_rates": (0.0, 0.1),
    "connections": 6,
    "interval": 15.0,
    "duration": 900.0,
}


def test_impaired_sweep_serial_equals_parallel():
    # Any impairment configuration with a fixed seed must be
    # byte-identical whether run serially or fanned out over processes.
    serial = run_sweep("impairment-matrix", range(2), SMALL_GRID,
                       jobs=1, use_cache=False)
    parallel = run_sweep("impairment-matrix", range(2), SMALL_GRID,
                         jobs=2, use_cache=False)
    assert serial.canonical_bytes() == parallel.canonical_bytes()


def _trace(world):
    """A byte-comparable rendition of everything observable in a world."""
    segments = [
        (rec.time, rec.sent, rec.segment.flags, rec.segment.seq,
         rec.segment.ack, rec.segment.payload, rec.segment.ttl,
         rec.segment.ip_id, rec.segment.tsval)
        for host in world.hosts.values()
        for rec in host.capture
    ]
    return (segments, world.bus.snapshot(), world.gfw.flagged_connections,
            len(world.gfw.probe_log), world.net.segments_delivered)


def _run_workload(impairment):
    world = build_world(seed=5,
                        detector_config=DetectorConfig(base_rate=1.0),
                        websites=["example.com"],
                        impairment=impairment)
    server_host = world.add_server("server", region="uk")
    client_host = world.add_client("client")
    ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                      "ss-libev-3.3.1", rng=random.Random(6))
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "chacha20-ietf-poly1305", rng=random.Random(7))
    CurlDriver(client, rng=random.Random(8),
               sites=["example.com"]).run_schedule(5, 30.0)
    world.sim.run(until=1800.0)
    return _trace(world)


def test_zero_impairment_reproduces_pristine_traces():
    # An all-zero Impairment must be indistinguishable from no
    # impairment at all: same segments, same timing, same bus counters.
    assert _run_workload(None) == _run_workload(Impairment())


def test_impaired_workload_reproducible_per_seed():
    imp = Impairment(loss=0.03, reorder=0.05, jitter=0.002)
    assert _run_workload(imp) == _run_workload(imp)
