"""Property-based tests over the Shadowsocks wire formats and parsers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AuthenticationError
from repro.shadowsocks import (
    INVALID,
    NEED_MORE,
    AeadDecryptor,
    AeadEncryptor,
    PingPongBloom,
    StreamDecryptor,
    StreamEncryptor,
    encode_target,
    parse_target,
)

hostnames = st.from_regex(r"[a-z][a-z0-9\-]{0,60}(\.[a-z]{2,6}){1,2}",
                          fullmatch=True)
ports = st.integers(min_value=0, max_value=65535)
ipv4s = st.tuples(*([st.integers(0, 255)] * 4)).map(
    lambda t: ".".join(map(str, t)))


@given(host=hostnames, port=ports)
@settings(max_examples=80, deadline=None)
def test_spec_roundtrip_hostname(host, port):
    result = parse_target(encode_target(host, port))
    assert result.ok
    assert result.spec.host == host
    assert result.spec.port == port


@given(host=ipv4s, port=ports)
@settings(max_examples=80, deadline=None)
def test_spec_roundtrip_ipv4(host, port):
    result = parse_target(encode_target(host, port))
    assert result.ok
    assert result.spec.host == host and result.spec.port == port


@given(data=st.binary(max_size=64), mask=st.booleans())
@settings(max_examples=150, deadline=None)
def test_parse_never_crashes_and_is_sane(data, mask):
    result = parse_target(data, mask_atyp=mask)
    assert result.status in ("ok", NEED_MORE, INVALID)
    if result.ok:
        assert 0 < result.consumed <= len(data)
        assert 0 <= result.spec.port <= 65535


@given(data=st.binary(min_size=1, max_size=40), suffix=st.binary(max_size=20))
@settings(max_examples=100, deadline=None)
def test_parse_ok_stable_under_extension(data, suffix):
    """Once a spec parses, appending bytes cannot change what was parsed."""
    first = parse_target(data)
    if first.ok:
        second = parse_target(data + suffix)
        assert second.ok
        assert second.spec == first.spec
        assert second.consumed == first.consumed


@given(method=st.sampled_from(["aes-128-ctr", "aes-256-cfb", "chacha20",
                               "chacha20-ietf", "rc4-md5"]),
       key_seed=st.integers(0, 2**32 - 1),
       messages=st.lists(st.binary(min_size=0, max_size=100), min_size=1,
                         max_size=5))
@settings(max_examples=40, deadline=None)
def test_stream_session_roundtrip(method, key_seed, messages):
    from repro.crypto import get_spec

    rng = random.Random(key_seed)
    key = bytes(rng.randrange(256) for _ in range(get_spec(method).key_len))
    enc = StreamEncryptor(method, key, rng=rng)
    dec = StreamDecryptor(method, key)
    wire = b"".join(enc.encrypt(m) for m in messages)
    assert dec.decrypt(wire) == b"".join(messages)


@given(method=st.sampled_from(["aes-128-gcm", "aes-256-gcm",
                               "chacha20-ietf-poly1305"]),
       key_seed=st.integers(0, 2**32 - 1),
       messages=st.lists(st.binary(min_size=0, max_size=100), min_size=1,
                         max_size=4),
       chunk=st.integers(min_value=1, max_value=37))
@settings(max_examples=30, deadline=None)
def test_aead_session_roundtrip_any_chunking(method, key_seed, messages, chunk):
    from repro.crypto import get_spec

    rng = random.Random(key_seed)
    key = bytes(rng.randrange(256) for _ in range(get_spec(method).key_len))
    enc = AeadEncryptor(method, key, rng=rng)
    dec = AeadDecryptor(method, key)
    wire = b"".join(enc.encrypt(m) for m in messages)
    plain = bytearray()
    for i in range(0, len(wire), chunk):
        plain.extend(dec.decrypt(wire[i : i + chunk]))
    assert bytes(plain) == b"".join(messages)


@given(key_seed=st.integers(0, 2**32 - 1),
       payload=st.binary(min_size=1, max_size=80),
       flip=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_aead_session_tamper_detected(key_seed, payload, flip):
    rng = random.Random(key_seed)
    key = bytes(rng.randrange(256) for _ in range(32))
    enc = AeadEncryptor("aes-256-gcm", key, rng=rng)
    wire = bytearray(enc.encrypt(payload))
    wire[flip % len(wire)] ^= 1 << (flip % 8)
    dec = AeadDecryptor("aes-256-gcm", key)
    if (flip % len(wire)) < 32:
        # Salt flipped: derives a different subkey -> auth failure.
        with pytest.raises(AuthenticationError):
            dec.decrypt(bytes(wire))
    else:
        with pytest.raises(AuthenticationError):
            dec.decrypt(bytes(wire))


@given(items=st.lists(st.binary(min_size=1, max_size=32), min_size=1,
                      max_size=200, unique=True))
@settings(max_examples=30, deadline=None)
def test_bloom_no_false_negatives(items):
    bloom = PingPongBloom(capacity=1000)
    for item in items:
        bloom.check_and_add(item)
    assert all(item in bloom for item in items)
