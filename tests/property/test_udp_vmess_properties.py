"""Property-based tests for the UDP codec and the VMess header."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import AuthenticationError, evp_bytes_to_key, get_spec
from repro.shadowsocks import encode_target
from repro.shadowsocks.udp import decode_udp_packet, encode_udp_packet
from repro.vmess import build_request, fnv1a32, parse_command

AEAD_METHODS = ("aes-128-gcm", "aes-256-gcm", "chacha20-ietf-poly1305")


@given(method=st.sampled_from(AEAD_METHODS),
       port=st.integers(0, 65535),
       payload=st.binary(max_size=400),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_udp_codec_roundtrip_any_payload(method, port, payload, seed):
    rng = random.Random(seed)
    key = evp_bytes_to_key(b"pw", get_spec(method).key_len)
    spec_bytes = encode_target("203.0.113.9", port)
    wire = encode_udp_packet(method, key, spec_bytes, payload, rng)
    assert decode_udp_packet(method, key, wire) == spec_bytes + payload


@given(method=st.sampled_from(AEAD_METHODS),
       payload=st.binary(min_size=1, max_size=200),
       flip=st.integers(min_value=0, max_value=100_000),
       seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_udp_codec_aead_tamper_always_detected(method, payload, flip, seed):
    rng = random.Random(seed)
    key = evp_bytes_to_key(b"pw", get_spec(method).key_len)
    wire = bytearray(encode_udp_packet(method, key,
                                       encode_target("1.2.3.4", 1), payload,
                                       rng))
    wire[flip % len(wire)] ^= 1 << (flip % 8)
    with pytest.raises(AuthenticationError):
        decode_udp_packet(method, key, bytes(wire))


@given(data=st.binary(max_size=1000))
@settings(max_examples=100, deadline=None)
def test_fnv1a32_range(data):
    assert 0 <= fnv1a32(data) <= 0xFFFFFFFF


hostnames = st.from_regex(r"[a-z][a-z0-9\-]{0,40}\.[a-z]{2,5}", fullmatch=True)


@given(host=hostnames, port=st.integers(0, 65535),
       timestamp=st.integers(0, 2**32), seed=st.integers(0, 2**32 - 1),
       padding=st.integers(0, 15))
@settings(max_examples=60, deadline=None)
def test_vmess_header_roundtrip(host, port, timestamp, seed, padding):
    user_id = bytes(range(16))
    head, built = build_request(user_id, timestamp, host, port,
                                rng=random.Random(seed), padding_len=padding)
    status, parsed, total = parse_command(user_id, timestamp, head[16:])
    assert status == "ok"
    assert parsed.host == host and parsed.port == port
    assert parsed.padding_len == padding
    assert total == len(head) - 16


@given(host=hostnames, port=st.integers(0, 65535),
       seed=st.integers(0, 2**16),
       flip=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=40, deadline=None)
def test_vmess_header_corruption_never_parses_ok(host, port, seed, flip):
    """Any bit flip in the command section fails the FNV hash or derails
    parsing — it never yields a silently different valid request."""
    user_id = bytes(range(16))
    head, _ = build_request(user_id, 1000, host, port,
                            rng=random.Random(seed))
    section = bytearray(head[16:])
    section[flip % len(section)] ^= 1 << (flip % 8)
    status, parsed, _ = parse_command(user_id, 1000, bytes(section))
    assert status in ("bad_hash", "need_more")
