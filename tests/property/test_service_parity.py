"""Service/CLI parity: POST /jobs returns the CLI's exact bytes.

The acceptance property of the control plane: for any JobSpec, the
merged document a job returns over HTTP is byte-identical (canonical
JSON) to what ``python -m repro run`` prints for the equivalent
invocation — serial and sharded, across several builtin scenarios.
Caching is disabled on both sides so both paths genuinely execute.
"""

import os
import subprocess
import sys

import pytest

from repro.runtime.scenario import canonical_json

# (scenario, overrides, also test --shards 2?).  Parameterizations are
# deliberately tiny so each case stays around a second.
PARITY_CASES = [
    ("quickstart", {"connections": 8}, False),
    ("impairment-matrix", {"loss_rates": [0.0, 0.01],
                           "reorder_rates": [0.0],
                           "connections": 5, "duration": 1800.0}, True),
    ("probesim-grid", {"trials": 1, "profiles": ["ss-libev-3.1.3"],
                       "methods": ["aes-128-gcm", "aes-256-ctr"],
                       "lengths": [1, 2, 50]}, True),
    ("scale-1m", {"flows": 2000, "block_size": 256}, True),
]


def _cli_bytes(scenario, overrides, shards):
    argv = [sys.executable, "-m", "repro", "run", scenario,
            "--json", "--no-cache", "--seeds", "2"]
    if shards is not None:
        argv += ["--shards", str(shards), "--jobs", "2"]
    for key, value in overrides.items():
        argv += ["--set", f"{key}={canonical_json(value)}"]
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.run(argv, capture_output=True, text=True, env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))))
    assert proc.returncode == 0, proc.stderr
    return proc.stdout.strip()


def _service_bytes(client, scenario, overrides, shards):
    spec = {"scenario": scenario, "seeds": 2, "overrides": overrides,
            "use_cache": False}
    if shards is not None:
        spec["shards"] = shards
        spec["jobs"] = 2
    job = client.submit(spec)
    done = client.wait(job["id"], timeout=600)
    return canonical_json(done["result"]).strip()


@pytest.mark.parametrize(
    "scenario,overrides,shards",
    [pytest.param(s, o, None, id=f"{s}-serial")
     for s, o, _ in PARITY_CASES]
    + [pytest.param(s, o, 2, id=f"{s}-shards2")
       for s, o, shardable in PARITY_CASES if shardable])
def test_service_result_is_byte_identical_with_cli(service, scenario,
                                                   overrides, shards):
    _, client = service
    assert _service_bytes(client, scenario, overrides, shards) \
        == _cli_bytes(scenario, overrides, shards)
