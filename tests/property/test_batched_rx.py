"""Receive-side batching invariants: batched RX == per-segment, byte for byte.

The batched receive path (``Host.deliver_burst`` → ``TcpConnection.
handle_burst`` → coalesced cumulative ACKs riding the return transmit
batch) is a pure performance transform, the receive-side twin of the
transmit batching pinned by ``test_batched_datapath``.  With
``Host.rx_batching`` forced off every arrival takes the historical
``handle_segment`` path, and all observables — captures, bus counters,
analyzer states, flag decisions, probe logs, canonical run payloads —
must be identical between the two modes, pristine or impaired.
``REPRO_NET_BATCH_RX=0`` is the user-facing kill switch.
"""

import os
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfw import DetectorConfig
from repro.net import Impairment
from repro.net.host import Host
from repro.runtime import run_scenario
from repro.runtime.scenario import scenario_names
from repro.runtime.topology import build_world
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver

from .test_batched_datapath import SCENARIO_OVERRIDES, _trace


def _run_canonical(name, rx_batching, seed=0):
    original = Host.rx_batching
    Host.rx_batching = rx_batching
    try:
        result = run_scenario(name, seed=seed,
                              overrides=SCENARIO_OVERRIDES[name],
                              use_cache=False)
    finally:
        Host.rx_batching = original
    return result.canonical_bytes()


def test_override_table_covers_every_builtin_scenario():
    # The transmit-side suite owns the table; re-assert completeness here
    # so a new builtin scenario cannot silently skip the RX equivalence.
    assert set(SCENARIO_OVERRIDES) == set(scenario_names())


@pytest.mark.parametrize("name", sorted(SCENARIO_OVERRIDES))
def test_batched_rx_equals_per_segment(name):
    # Zero-impairment runs of every builtin scenario must be
    # byte-identical with and without the batched receive path.
    assert _run_canonical(name, True) == _run_canonical(name, False)


# ----------------------------------------------- impaired burst ordering


def _run_workload(impairment, rx_batching):
    original = Host.rx_batching
    Host.rx_batching = rx_batching
    try:
        world = build_world(seed=5,
                            detector_config=DetectorConfig(base_rate=1.0),
                            websites=["example.com"],
                            impairment=impairment)
        server_host = world.add_server("server", region="uk")
        client_host = world.add_client("client")
        ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                          "ss-libev-3.3.1", rng=random.Random(6))
        client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                   "chacha20-ietf-poly1305",
                                   rng=random.Random(7))
        CurlDriver(client, rng=random.Random(8),
                   sites=["example.com"]).run_schedule(5, 30.0)
        world.sim.run(until=1800.0)
        return _trace(world)
    finally:
        Host.rx_batching = original


@given(loss=st.sampled_from([0.0, 0.02, 0.08]),
       reorder=st.sampled_from([0.0, 0.05, 0.2]),
       duplicate=st.sampled_from([0.0, 0.05]))
@settings(max_examples=8, deadline=None)
def test_impaired_rx_matches_per_segment(loss, reorder, duplicate):
    # Impaired fabrics keep the sequence-checked per-segment receive
    # (handle_burst gates on conn.reliable), so the batched mode must
    # reproduce every retransmission, reordering, and duplicate exactly.
    imp = Impairment(loss=loss, reorder=reorder, duplicate=duplicate,
                     jitter=0.002)
    assert _run_workload(imp, True) == _run_workload(imp, False)


def test_zero_impairment_batched_rx_equals_absent_impairment():
    # Cross-mode *and* cross-impairment: an all-zero profile under
    # batched RX reproduces the pristine per-segment traces.
    assert _run_workload(None, True) == _run_workload(Impairment(), False)


# ------------------------------------------------------- kill switch


def test_rx_kill_switch_env_var():
    # REPRO_NET_BATCH_RX=0 must force the class flag off at import time.
    code = ("from repro.net.host import Host; "
            "import sys; sys.exit(0 if not Host.rx_batching else 1)")
    env = dict(os.environ, REPRO_NET_BATCH_RX="0")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))))
    assert proc.returncode == 0


def test_rx_kill_switch_default_on():
    code = ("from repro.net.host import Host; "
            "import sys; sys.exit(0 if Host.rx_batching else 1)")
    env = dict(os.environ)
    env.pop("REPRO_NET_BATCH_RX", None)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p)
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.dirname(os.path.abspath(__file__)))))
    assert proc.returncode == 0
