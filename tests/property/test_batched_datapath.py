"""Batched datapath invariants: batched == per-segment, byte for byte.

The burst datapath (host transmit batching, burst middlebox traversal,
weighted burst delivery events) is a pure performance transform: with
batching forced off the library reproduces the historical
one-event-per-segment behaviour, and every observable — captures, bus
counters, flag decisions, probe logs, delivery counts, canonical run
payloads — must be identical between the two modes, pristine or
impaired.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gfw import DetectorConfig
from repro.net import Impairment
from repro.net.host import Host
from repro.runtime import run_scenario
from repro.runtime.scenario import scenario_names
from repro.runtime.topology import build_world
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver

# Small parameterizations per builtin scenario, tier-1 friendly.  A
# registry test below keeps this table complete: every builtin must be
# exercised in both datapath modes.
SCENARIO_OVERRIDES = {
    "shadowsocks": {"connections_per_pair": 40, "duration": 21600.0,
                    "libev_pairs": 1, "outline_pairs": 1},
    "sink": {"connections": 150, "duration": 7200.0},
    "brdgrd": {"duration": 21600.0,
               "brdgrd_windows": [[3600.0, 10800.0]]},
    "blocking": {"connections_per_server": 30, "duration": 86400.0,
                 "sensitive_periods": [[21600.0, 43200.0]]},
    "probesim-grid": {"trials": 1, "profiles": ["ss-libev-3.1.3"],
                      "methods": ["aes-128-gcm"], "lengths": [1, 2, 50]},
    "probesim-replay": {"trials": 1,
                        "pairs": [["ss-libev-3.1.3", "aes-256-ctr"]]},
    "ablation-detector-features": {"samples": 50},
    "impairment-matrix": {"loss_rates": [0.0, 0.01], "reorder_rates": [0.0],
                          "connections": 5, "duration": 1800.0},
    "ablation-defense-matrix": {"connections": 4, "duration": 1800.0},
    "ablation-detector-ensemble": {
        "connections": 4, "duration": 1800.0,
        "cases": [["passive", {"kind": "passive", "base_rate": 1.0}],
                  ["entropy", {"kind": "entropy", "threshold": 7.2}]]},
    "scale-1m": {"flows": 2000, "block_size": 256},
    "quickstart": {"connections": 6},
    "tor-probing": {"connections": 4, "interval": 60.0, "duration": 3600.0},
}


def _run_canonical(name, batching, seed=0):
    original = Host.tx_batching
    Host.tx_batching = batching
    try:
        result = run_scenario(name, seed=seed,
                              overrides=SCENARIO_OVERRIDES[name],
                              use_cache=False)
    finally:
        Host.tx_batching = original
    return result.canonical_bytes()


def test_override_table_covers_every_builtin_scenario():
    assert set(SCENARIO_OVERRIDES) == set(scenario_names())


@pytest.mark.parametrize("name", sorted(SCENARIO_OVERRIDES))
def test_batched_equals_per_segment(name):
    # Zero-impairment runs of every builtin scenario must be
    # byte-identical with and without the batched datapath.
    assert _run_canonical(name, True) == _run_canonical(name, False)


# ----------------------------------------------- impaired burst ordering


def _trace(world):
    """A byte-comparable rendition of everything observable in a world."""
    segments = [
        (rec.time, rec.sent, rec.segment.flags, rec.segment.seq,
         rec.segment.ack, rec.segment.payload, rec.segment.ttl,
         rec.segment.ip_id, rec.segment.tsval)
        for host in world.hosts.values()
        for rec in host.capture
    ]
    return (segments, world.bus.snapshot(), world.gfw.flagged_connections,
            len(world.gfw.probe_log), world.net.segments_delivered,
            world.net.segments_dropped)


def _run_workload(impairment, batching):
    original = Host.tx_batching
    Host.tx_batching = batching
    try:
        world = build_world(seed=5,
                            detector_config=DetectorConfig(base_rate=1.0),
                            websites=["example.com"],
                            impairment=impairment)
        server_host = world.add_server("server", region="uk")
        client_host = world.add_client("client")
        ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                          "ss-libev-3.3.1", rng=random.Random(6))
        client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                                   "chacha20-ietf-poly1305",
                                   rng=random.Random(7))
        CurlDriver(client, rng=random.Random(8),
                   sites=["example.com"]).run_schedule(5, 30.0)
        world.sim.run(until=1800.0)
        return _trace(world)
    finally:
        Host.tx_batching = original


@given(loss=st.sampled_from([0.0, 0.02, 0.08]),
       reorder=st.sampled_from([0.0, 0.05, 0.2]),
       duplicate=st.sampled_from([0.0, 0.05]))
@settings(max_examples=8, deadline=None)
def test_impaired_burst_ordering_matches_per_segment(loss, reorder, duplicate):
    # Under loss/reorder/duplication the burst path falls back to
    # per-copy scheduling, drawing each segment's faults in burst order:
    # the RNG stream — and hence every retransmission, reordering, and
    # duplicate — must match the per-segment datapath exactly.
    imp = Impairment(loss=loss, reorder=reorder, duplicate=duplicate,
                     jitter=0.002)
    assert _run_workload(imp, True) == _run_workload(imp, False)


def test_zero_impairment_batched_equals_absent_impairment_per_segment():
    # Cross-mode *and* cross-impairment: an all-zero profile under the
    # batched path reproduces the pristine per-segment traces.
    assert _run_workload(None, True) == _run_workload(Impairment(), False)
