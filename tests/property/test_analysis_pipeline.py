"""Property tests for the streaming analysis pipeline.

Two invariants anchor the refactor:

1. **Streaming == batch.**  Every experiment summary computed
   incrementally by the :class:`~repro.analysis.pipeline.AnalysisPipeline`
   must be byte-identical (canonical JSON) to the legacy post-hoc
   computation over buffered captures and probe logs.
2. **Parallel merge == serial.**  Sweeping a scenario across seeds with
   a process pool — where shards exchange serialized analyzer states,
   never raw captures — must merge to the same bytes as a serial sweep.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import extract_probes
from repro.runtime import get_scenario, run_sweep
from repro.runtime.scenario import canonical_json
from repro.runtime.scenarios import BATCH_SUMMARIZERS

# Deliberately small parameterizations: every scenario in minutes-of-sim
# rather than days, so the whole module stays tier-1 friendly.
CHEAP_OVERRIDES = {
    "shadowsocks": {"connections_per_pair": 40, "duration": 21600.0,
                    "libev_pairs": 1, "outline_pairs": 1},
    "sink": {"connections": 150, "duration": 7200.0},
    "brdgrd": {"duration": 21600.0,
               "brdgrd_windows": [[3600.0, 10800.0]]},
    "blocking": {"connections_per_server": 30, "duration": 86400.0,
                 "sensitive_periods": [[21600.0, 43200.0]]},
    "probesim-grid": {"trials": 1, "profiles": ["ss-libev-3.1.3"],
                      "methods": ["aes-128-gcm"], "lengths": [1, 2, 50]},
    "probesim-replay": {"trials": 1,
                        "pairs": [["ss-libev-3.1.3", "aes-256-ctr"]]},
    "ablation-detector-features": {"samples": 50},
    "impairment-matrix": {"loss_rates": [0.0], "reorder_rates": [0.0],
                          "connections": 5, "duration": 1800.0},
    "ablation-defense-matrix": {"connections": 4, "duration": 1800.0},
}

EXPERIMENT_SCENARIOS = sorted(BATCH_SUMMARIZERS)


def _build(name, seed, extra=None):
    scenario = get_scenario(name)
    overrides = dict(CHEAP_OVERRIDES[name], **(extra or {}))
    return scenario, scenario.build(scenario.instantiate(seed, overrides))


def _assert_streaming_equals_batch(name, seed):
    scenario, artifact = _build(name, seed)
    streaming = canonical_json(scenario.summarize(artifact))
    batch = canonical_json(BATCH_SUMMARIZERS[name](artifact))
    assert streaming == batch
    return artifact


# ------------------------------------------------- streaming == batch


@given(seed=st.integers(0, 10_000))
@settings(max_examples=5, deadline=None)
def test_sink_streaming_equals_batch(seed):
    _assert_streaming_equals_batch("sink", seed)


@pytest.mark.parametrize("name", ["shadowsocks", "brdgrd", "blocking"])
def test_streaming_equals_batch(name):
    _assert_streaming_equals_batch(name, seed=3)


def test_capture_classifier_matches_extract_probes():
    """The deferred per-server classifier replays ``extract_probes``."""
    _, artifact = _build("shadowsocks", seed=1)
    config = artifact.config
    for name, probes in artifact.server_probes.items():
        capture = artifact.world.hosts[name].capture
        client_ip = artifact.world.hosts[
            name.replace("-server", "-client")].ip
        batch = extract_probes(capture, config.server_port, [client_ip])
        assert [p.__dict__ for p in probes] == [p.__dict__ for p in batch]


# -------------------------------------------- parallel merge == serial


@pytest.mark.parametrize("name", sorted(CHEAP_OVERRIDES))
def test_parallel_merge_equals_serial(name):
    overrides = CHEAP_OVERRIDES[name]
    serial = run_sweep(name, seeds=[0, 1], overrides=overrides,
                       jobs=1, use_cache=False)
    parallel = run_sweep(name, seeds=[0, 1], overrides=overrides,
                         jobs=2, use_cache=False)
    assert serial.canonical_bytes() == parallel.canonical_bytes()


def test_merged_analysis_equals_merged_states():
    """The sweep's cross-seed analysis re-finalizes merged states."""
    from repro.analysis.pipeline import merge_analysis

    sweep = run_sweep("sink", seeds=[0, 1],
                      overrides=CHEAP_OVERRIDES["sink"],
                      jobs=1, use_cache=False)
    merged = sweep.merged()
    expected = merge_analysis([r.analysis for r in sweep.results])
    assert canonical_json(merged["analysis"]) == canonical_json(expected)
    per_seed = [r.analysis["probes"]["output"]["count"]
                for r in sweep.results]
    assert merged["analysis"]["probes"]["count"] == sum(per_seed)


# -------------------------------------------------- bounded memory


def test_stream_captures_bounded_memory():
    """``stream_captures`` drops capture buffering without changing output."""
    _, buffered = _build("sink", seed=2)
    _, streamed = _build("sink", seed=2, extra={"stream_captures": True})
    assert (canonical_json(streamed.pipeline.payload())
            == canonical_json(buffered.pipeline.payload()))
    buffered_records = sum(len(h.capture.records)
                           for h in buffered.world.hosts.values())
    streamed_records = sum(len(h.capture.records)
                           for h in streamed.world.hosts.values())
    assert buffered_records > 0
    assert streamed_records == 0
