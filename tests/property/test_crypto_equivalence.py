"""Fast path vs retained reference: byte-identical for every cipher.

The optimized implementations (T-table AES, table-driven GHASH, batched
CTR/CFB/ChaCha keystream, chunked Poly1305, numpy-vectorized batch
paths) must be indistinguishable from the originals kept in
``repro.crypto._reference`` — over random keys, nonces, message sizes,
and arbitrary chunked-vs-whole call patterns, through both the direct
classes and the ``REPRO_CRYPTO`` backend switch.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AESGCM,
    CFBMode,
    CIPHERS,
    CTRMode,
    ChaCha20,
    ChaCha20DJB,
    ChaCha20Poly1305,
    CipherKind,
    RC4,
    new_aead,
    new_stream_cipher,
    poly1305_mac,
    set_backend,
)
from repro.crypto import _reference as ref
from repro.crypto.aes import AES

aes_keys = st.binary(min_size=16, max_size=16) | st.binary(
    min_size=24, max_size=24) | st.binary(min_size=32, max_size=32)
keys256 = st.binary(min_size=32, max_size=32)
ivs16 = st.binary(min_size=16, max_size=16)
nonces12 = st.binary(min_size=12, max_size=12)
nonces8 = st.binary(min_size=8, max_size=8)
messages = st.binary(min_size=0, max_size=2000)
# Chunk boundary lists: cut points as fractions of the message length.
cuts = st.lists(st.floats(min_value=0.0, max_value=1.0), max_size=8)


def _chunked(data, fractions):
    """Split ``data`` at the given fractional positions (sorted, deduped)."""
    points = sorted({int(f * len(data)) for f in fractions})
    chunks = []
    prev = 0
    for p in points + [len(data)]:
        chunks.append(data[prev:p])
        prev = p
    return chunks


def _run_chunked(cipher, chunks):
    return b"".join(cipher.process(c) for c in chunks)


@given(key=aes_keys, block=st.binary(min_size=16, max_size=16))
@settings(max_examples=60, deadline=None)
def test_aes_block_matches_reference(key, block):
    assert AES(key).encrypt_block(block) == ref.ReferenceAES(key).encrypt_block(block)


@given(key=aes_keys, iv=ivs16, data=messages, fractions=cuts)
@settings(max_examples=40, deadline=None)
def test_ctr_matches_reference_chunked(key, iv, data, fractions):
    chunks = _chunked(data, fractions)
    fast = _run_chunked(CTRMode(key, iv), chunks)
    slow = _run_chunked(ref.ReferenceCTRMode(key, iv), chunks)
    assert fast == slow
    assert CTRMode(key, iv).process(data) == slow


@given(key=aes_keys, iv=ivs16, data=messages, fractions=cuts,
       encrypt=st.booleans())
@settings(max_examples=40, deadline=None)
def test_cfb_matches_reference_chunked(key, iv, data, fractions, encrypt):
    chunks = _chunked(data, fractions)
    fast = _run_chunked(CFBMode(key, iv, encrypt), chunks)
    slow = _run_chunked(ref.ReferenceCFBMode(key, iv, encrypt), chunks)
    assert fast == slow
    assert CFBMode(key, iv, encrypt).process(data) == slow


@given(key=keys256, nonce=nonces12, data=messages, fractions=cuts)
@settings(max_examples=30, deadline=None)
def test_chacha20_ietf_matches_reference_chunked(key, nonce, data, fractions):
    chunks = _chunked(data, fractions)
    fast = _run_chunked(ChaCha20(key, nonce), chunks)
    slow = _run_chunked(ref.ReferenceChaCha20(key, nonce), chunks)
    assert fast == slow
    assert ChaCha20(key, nonce).process(data) == slow


@given(key=keys256, nonce=nonces8, data=messages, fractions=cuts)
@settings(max_examples=30, deadline=None)
def test_chacha20_djb_matches_reference_chunked(key, nonce, data, fractions):
    chunks = _chunked(data, fractions)
    fast = _run_chunked(ChaCha20DJB(key, nonce), chunks)
    slow = _run_chunked(ref.ReferenceChaCha20DJB(key, nonce), chunks)
    assert fast == slow


@given(key=st.binary(min_size=1, max_size=64), data=messages, fractions=cuts)
@settings(max_examples=30, deadline=None)
def test_rc4_matches_reference_chunked(key, data, fractions):
    chunks = _chunked(data, fractions)
    assert (_run_chunked(RC4(key), chunks)
            == _run_chunked(ref.ReferenceRC4(key), chunks))


@given(key=aes_keys, nonce=nonces12, plaintext=messages,
       aad=st.binary(max_size=80))
@settings(max_examples=30, deadline=None)
def test_gcm_matches_reference(key, nonce, plaintext, aad):
    fast, slow = AESGCM(key), ref.ReferenceAESGCM(key)
    sealed = fast.seal(nonce, plaintext, aad)
    assert sealed == slow.seal(nonce, plaintext, aad)
    assert fast.open(nonce, sealed, aad) == plaintext
    # Reuse the same object: exercises the lazy GHASH-table upgrade on
    # cumulative bytes, which must not change any output.
    assert fast.seal(nonce, plaintext, aad) == sealed


@given(key=keys256, message=st.binary(min_size=0, max_size=3000))
@settings(max_examples=40, deadline=None)
def test_poly1305_matches_reference(key, message):
    assert poly1305_mac(key, message) == ref.reference_poly1305_mac(key, message)


@given(key=keys256, nonce=nonces12, plaintext=messages,
       aad=st.binary(max_size=80))
@settings(max_examples=30, deadline=None)
def test_chacha20poly1305_matches_reference(key, nonce, plaintext, aad):
    fast, slow = ChaCha20Poly1305(key), ref.ReferenceChaCha20Poly1305(key)
    sealed = fast.seal(nonce, plaintext, aad)
    assert sealed == slow.seal(nonce, plaintext, aad)
    assert fast.open(nonce, sealed, aad) == plaintext


@pytest.mark.parametrize("name", sorted(CIPHERS))
def test_backend_switch_equivalence(name):
    """Every registry cipher gives identical bytes through both backends."""
    import random
    import zlib

    rng = random.Random(zlib.crc32(name.encode()))
    spec = CIPHERS[name]
    key = rng.randbytes(spec.key_len)
    data = rng.randbytes(1337)
    try:
        if spec.kind == CipherKind.STREAM:
            iv = rng.randbytes(spec.iv_len)
            set_backend("fast")
            fast_enc = new_stream_cipher(name, key, iv, True).process(data)
            set_backend("reference")
            ref_enc = new_stream_cipher(name, key, iv, True).process(data)
            assert fast_enc == ref_enc
            set_backend("fast")
            fast_dec = new_stream_cipher(name, key, iv, False).process(fast_enc)
            set_backend("reference")
            ref_dec = new_stream_cipher(name, key, iv, False).process(fast_enc)
            assert fast_dec == ref_dec == data
        else:
            nonce = rng.randbytes(12)
            set_backend("fast")
            fast_sealed = new_aead(name, key).seal(nonce, data)
            set_backend("reference")
            ref_sealed = new_aead(name, key).seal(nonce, data)
            assert fast_sealed == ref_sealed
            set_backend("fast")
            assert new_aead(name, key).open(nonce, fast_sealed) == data
    finally:
        set_backend(None)
