"""RC4 known-answer vectors and package metadata."""

import pytest

from repro.crypto import RC4, new_stream_cipher


def test_rc4_wikipedia_vector_key():
    # RC4("Key") keystream ^ "Plaintext" = BBF316E8D940AF0AD3
    assert RC4(b"Key").encrypt(b"Plaintext").hex().upper() == "BBF316E8D940AF0AD3"


def test_rc4_wikipedia_vector_wiki():
    assert RC4(b"Wiki").encrypt(b"pedia").hex().upper() == "1021BF0420"


def test_rc4_wikipedia_vector_secret():
    assert RC4(b"Secret").encrypt(b"Attack at dawn").hex().upper() == (
        "45A01F645FC35B383552544B9BF5"
    )


def test_rc4_incremental_state():
    one = RC4(b"abc").encrypt(b"hello world")
    two = RC4(b"abc")
    assert two.encrypt(b"hello") + two.encrypt(b" world") == one


def test_rc4_empty_key_rejected():
    with pytest.raises(ValueError):
        RC4(b"")


def test_rc4_md5_method_keying():
    import hashlib

    key, iv = b"k" * 16, b"i" * 16
    cipher = new_stream_cipher("rc4-md5", key, iv, encrypt=True)
    reference = RC4(hashlib.md5(key + iv).digest())
    assert cipher.encrypt(b"data") == reference.encrypt(b"data")


def test_unknown_stream_method_rejected():
    with pytest.raises(ValueError):
        new_stream_cipher("rot13", b"k" * 16, b"i" * 16, encrypt=True)


def test_package_version():
    import repro

    assert repro.__version__ == "1.0.0"
