"""EVP_BytesToKey and HKDF-SHA1 derivations."""

import hashlib

import pytest

from repro.crypto import derive_subkey, evp_bytes_to_key, hkdf_sha1


def test_evp_bytes_to_key_16():
    # Single MD5 round: md5(password).
    assert evp_bytes_to_key(b"password", 16) == hashlib.md5(b"password").digest()


def test_evp_bytes_to_key_32():
    d1 = hashlib.md5(b"password").digest()
    d2 = hashlib.md5(d1 + b"password").digest()
    assert evp_bytes_to_key(b"password", 32) == d1 + d2


def test_evp_bytes_to_key_24_truncates():
    full = evp_bytes_to_key(b"barfoo!", 32)
    assert evp_bytes_to_key(b"barfoo!", 24) == full[:24]


def test_evp_rejects_nonpositive():
    with pytest.raises(ValueError):
        evp_bytes_to_key(b"p", 0)


def test_hkdf_sha1_rfc5869_case4():
    # RFC 5869 A.4 (SHA-1 basic test case).
    ikm = bytes.fromhex("0b0b0b0b0b0b0b0b0b0b0b")
    salt = bytes.fromhex("000102030405060708090a0b0c")
    info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
    okm = hkdf_sha1(ikm, salt, info, 42)
    assert okm.hex() == (
        "085a01ea1b10f36933068b56efa5ad81"
        "a4f14b822f5b091568a9cdd4f155fda2"
        "c22e422478d305f3f896"
    )


def test_hkdf_sha1_rfc5869_case6_empty_salt():
    # RFC 5869 A.6: zero-length salt defaults to HashLen zero bytes.
    ikm = bytes([0x0B] * 22)
    okm = hkdf_sha1(ikm, b"", b"", 42)
    assert okm.hex() == (
        "0ac1af7002b3d761d1e55298da9d0506"
        "b9ae52057220a306e07b6b87e8df21d0"
        "ea00033de03984d34918"
    )


def test_hkdf_length_bounds():
    with pytest.raises(ValueError):
        hkdf_sha1(b"k", b"s", b"i", 0)
    with pytest.raises(ValueError):
        hkdf_sha1(b"k", b"s", b"i", 255 * 20 + 1)


def test_derive_subkey_length_matches_master():
    for klen in (16, 24, 32):
        master = bytes(range(klen))
        sub = derive_subkey(master, b"\xaa" * 32)
        assert len(sub) == klen


def test_derive_subkey_salt_sensitivity():
    master = bytes(16)
    assert derive_subkey(master, bytes(16)) != derive_subkey(master, b"\x01" + bytes(15))
