"""Unit tests for the streaming analyzer protocol and pipeline wiring."""

import json

import pytest

from repro.analysis.pipeline import (
    AnalysisPipeline,
    Analyzer,
    EcdfAnalyzer,
    FlaggedConnections,
    OverlapAnalyzer,
    ProbeTally,
    ProberFingerprint,
    RandomDataStats,
    analyzer_kinds,
    build_analyzer,
    merge_analysis,
    register_analyzer,
    restore_analyzer,
    series,
)
from repro.runtime.events import EventBus


def probe_event(i, probe_type="replay", delay=None):
    event = {
        "kind": "probe",
        "time": 10.0 * i,
        "src_ip": f"101.{i % 4}.0.9",
        "src_port": 30000 + i,
        "server_ip": "203.0.113.5",
        "server_port": 8388,
        "probe_type": probe_type,
        "is_replay": probe_type == "replay",
        "payload": bytes([i % 251]) * (40 + i % 7),
        "source_payload": bytes([i % 251]) * (40 + i % 7),
        "tsval": i * 1000,
    }
    if delay is not None:
        event["delay"] = delay
    return event


# ---------------------------------------------------------------- registry


def test_registry_covers_builtin_analyzers():
    kinds = analyzer_kinds()
    for kind in ("probe_tally", "flagged_connections", "replay_delays",
                 "block_events", "syn_count", "probe_syn_times",
                 "capture_probes", "random_data", "ecdf", "overlap",
                 "fingerprint"):
        assert kind in kinds


def test_build_analyzer_unknown_kind():
    with pytest.raises(KeyError, match="unknown analyzer kind"):
        build_analyzer("nope")


def test_register_analyzer_requires_kind():
    with pytest.raises(ValueError):
        @register_analyzer
        class Nameless(Analyzer):
            pass


# ----------------------------------------------------- series / semantics


def test_series_empty_and_parity():
    assert series([]) == {"count": 0}
    odd = series([3.0, 1.0, 2.0])
    assert odd["median"] == 2.0 and odd["min"] == 1.0 and odd["max"] == 3.0
    even = series([4.0, 1.0, 2.0, 3.0])
    assert even["median"] == 2.5 and even["mean"] == 2.5


def test_state_round_trips_through_json():
    events = [probe_event(i, delay=float(i)) for i in range(20)]
    for kind in ("probe_tally", "replay_delays", "random_data",
                 "ecdf", "overlap", "fingerprint"):
        one = build_analyzer(kind)
        for event in events:
            one.observe(event)
        spec = {"analyzer": one.kind, "config": one.config(),
                "state": one.state_dict()}
        restored = restore_analyzer(json.loads(json.dumps(spec)))
        assert restored.finalize() == one.finalize()


def test_split_observe_then_merge_equals_single_pass():
    events = [probe_event(i, probe_type=("replay" if i % 3 else "rand"),
                          delay=float(i) * 0.5) for i in range(30)]
    for kind in ("probe_tally", "replay_delays", "random_data", "ecdf",
                 "overlap", "fingerprint"):
        whole = build_analyzer(kind)
        left, right = build_analyzer(kind), build_analyzer(kind)
        for event in events:
            whole.observe(event)
        for event in events[:13]:
            left.observe(event)
        for event in events[13:]:
            right.observe(event)
        left.merge(right)
        assert left.finalize() == whole.finalize(), kind


def test_merge_rejects_kind_mismatch():
    with pytest.raises(TypeError, match="cannot merge"):
        ProbeTally().merge(FlaggedConnections())


def test_merge_rejects_config_mismatch():
    with pytest.raises(ValueError, match="bins"):
        RandomDataStats(bins=4).merge(RandomDataStats(bins=8))


def test_ecdf_analyzer_quantiles():
    a = EcdfAnalyzer(event="probe", field="delay", quantiles=(0.5,))
    assert a.finalize() == {"count": 0}
    for i in range(1, 101):
        a.observe(probe_event(i, delay=float(i)))
    out = a.finalize()
    assert out["count"] == 100
    assert out["min"] == 1.0 and out["max"] == 100.0
    assert 49.0 <= out["quantiles"]["0.5"] <= 51.0


def test_overlap_analyzer_orders_first_seen():
    a = OverlapAnalyzer()
    for ip in ("1.1.1.1", "2.2.2.2", "1.1.1.1", "3.3.3.3"):
        a.observe({"kind": "probe", "src_ip": ip})
    assert a.ips == ["1.1.1.1", "2.2.2.2", "3.3.3.3"]
    assert a.finalize()["unique_ips"] == 3


def test_fingerprint_analyzer_clusters_rates():
    a = ProberFingerprint()
    for i in range(50):
        a.observe({"kind": "probe", "time": float(i),
                   "tsval": i * 1000, "src_port": 30000 + i})
    out = a.finalize()
    assert len(a.points) == 50
    assert any(c["rate_hz"] == pytest.approx(1000.0, rel=0.05)
               for c in out["clusters"])


# ------------------------------------------------------- merge_analysis


def _section(count):
    tally = ProbeTally()
    for i in range(count):
        tally.observe(probe_event(i))
    return {"probes": {"analyzer": tally.kind, "config": tally.config(),
                       "state": tally.state_dict(),
                       "output": tally.finalize()}}


def test_merge_analysis_sums_states():
    merged = merge_analysis([_section(3), _section(5)])
    assert merged["probes"]["count"] == 8


def test_merge_analysis_empty_when_any_run_unanalyzed():
    assert merge_analysis([]) == {}
    assert merge_analysis([_section(3), {}]) == {}


# ------------------------------------------------------------- pipeline


def test_pipeline_attach_detach_and_memoized_outputs():
    bus = EventBus()
    pipeline = AnalysisPipeline({"probes": ProbeTally(),
                                 "flagged": FlaggedConnections()})
    assert not bus.wants_records
    pipeline.attach(bus)
    assert bus.wants_records
    bus.emit("probe", probe_event(0))
    bus.emit("flow.flagged", {"time": 1.0})
    first = pipeline.outputs()
    assert first["probes"]["count"] == 1
    assert first["flagged"]["count"] == 1
    # Memoized: later events do not change the finalized view.
    bus.emit("probe", probe_event(1))
    assert pipeline.outputs() is first
    pipeline.detach()
    assert not bus.wants_records
    payload = pipeline.payload()
    assert payload["probes"]["analyzer"] == "probe_tally"
    assert payload["probes"]["output"] == first["probes"]


def test_emit_without_subscribers_is_dropped():
    bus = EventBus()
    bus.emit("probe", {"payload": b"\x00"})  # no listeners, no error
    assert bus.snapshot()["counters"] == {}


# ------------------------------------------------------------ analyze CLI


def test_cli_analyze_round_trip(tmp_path, capsys):
    from repro.cli import main

    run_args = ["sink", "--seeds", "2",
                "--set", "connections=60", "--set", "duration=3600",
                "--cache-dir", str(tmp_path)]
    assert main(["run"] + run_args + ["--json"]) == 0
    merged_run = json.loads(capsys.readouterr().out)

    assert main(["analyze"] + run_args + ["--json"]) == 0
    analyzed = json.loads(capsys.readouterr().out)
    assert analyzed == merged_run["analysis"]
    assert analyzed["probes"]["count"] >= 0

    assert main(["analyze"] + run_args) == 0
    text = capsys.readouterr().out
    assert "re-finalized 2 cached seed(s)" in text
    assert "probes" in text


def test_cli_analyze_missing_cache(tmp_path, capsys):
    from repro.cli import main

    assert main(["analyze", "sink", "--cache-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "no cached result" in err
