"""Stream and AEAD session wire formats."""

import random

import pytest

from repro.crypto import AuthenticationError, get_spec
from repro.shadowsocks import (
    AeadDecryptor,
    AeadEncryptor,
    StreamDecryptor,
    StreamEncryptor,
)
from repro.shadowsocks.stream_session import master_key

PASSWORD = "barfoo!"


def stream_pair(method):
    key = master_key(PASSWORD, method)
    return (
        StreamEncryptor(method, key, rng=random.Random(1)),
        StreamDecryptor(method, key),
    )


def aead_pair(method):
    from repro.shadowsocks.aead_session import aead_master_key

    key = aead_master_key(PASSWORD, method)
    return (
        AeadEncryptor(method, key, rng=random.Random(2)),
        AeadDecryptor(method, key),
    )


@pytest.mark.parametrize("method", [
    "aes-128-ctr", "aes-256-ctr", "aes-128-cfb", "aes-256-cfb",
    "chacha20", "chacha20-ietf", "rc4-md5",
])
def test_stream_roundtrip(method):
    enc, dec = stream_pair(method)
    wire = enc.encrypt(b"hello") + enc.encrypt(b" world")
    assert dec.decrypt(wire) == b"hello world"


@pytest.mark.parametrize("method", ["chacha20", "chacha20-ietf", "aes-256-ctr"])
def test_stream_iv_length(method):
    enc, dec = stream_pair(method)
    wire = enc.encrypt(b"x")
    spec = get_spec(method)
    assert len(wire) == spec.iv_len + 1
    dec.decrypt(wire)
    assert dec.iv == enc.iv


def test_stream_byte_by_byte_decryption():
    enc, dec = stream_pair("aes-256-cfb")
    wire = enc.encrypt(b"incremental decryption works")
    plain = b"".join(dec.decrypt(wire[i : i + 1]) for i in range(len(wire)))
    assert plain == b"incremental decryption works"


def test_stream_no_integrity():
    """Stream construction is malleable: bit flips decrypt to garbage, no error."""
    enc, dec = stream_pair("aes-128-ctr")
    wire = bytearray(enc.encrypt(bytes(10)))
    wire[-1] ^= 0xFF
    plain = dec.decrypt(bytes(wire))
    assert len(plain) == 10  # decryption "succeeds"
    assert plain != bytes(10)


@pytest.mark.parametrize("method", [
    "aes-128-gcm", "aes-192-gcm", "aes-256-gcm", "chacha20-ietf-poly1305",
])
def test_aead_roundtrip(method):
    enc, dec = aead_pair(method)
    wire = enc.encrypt(b"first") + enc.encrypt(b"second")
    assert dec.decrypt(wire) == b"firstsecond"


def test_aead_wire_layout():
    enc, _ = aead_pair("aes-256-gcm")
    wire = enc.encrypt(b"\x00" * 100)
    spec = get_spec("aes-256-gcm")
    # salt + (2+16) length chunk + (100+16) payload chunk
    assert len(wire) == spec.salt_len + 18 + 116


def test_aead_incremental_chunks():
    enc, dec = aead_pair("chacha20-ietf-poly1305")
    wire = enc.encrypt(b"a" * 500)
    plain = bytearray()
    for i in range(0, len(wire), 17):
        plain.extend(dec.decrypt(wire[i : i + 17]))
    assert bytes(plain) == b"a" * 500


def test_aead_large_payload_chunked_at_0x3fff():
    enc, dec = aead_pair("aes-128-gcm")
    payload = bytes(0x3FFF + 100)
    wire = enc.encrypt(payload)
    assert dec.decrypt(wire) == payload


def test_aead_tamper_raises():
    enc, dec = aead_pair("aes-256-gcm")
    wire = bytearray(enc.encrypt(b"payload"))
    wire[40] ^= 1  # inside the length chunk
    with pytest.raises(AuthenticationError):
        dec.decrypt(bytes(wire))


def test_aead_wrong_password_raises():
    from repro.shadowsocks.aead_session import aead_master_key

    enc = AeadEncryptor("aes-256-gcm", aead_master_key("right", "aes-256-gcm"),
                        rng=random.Random(3))
    dec = AeadDecryptor("aes-256-gcm", aead_master_key("wrong", "aes-256-gcm"))
    with pytest.raises(AuthenticationError):
        dec.decrypt(enc.encrypt(b"secret"))


def test_aead_random_bytes_raise_once_header_complete():
    """Random probes >= salt+35 always fail AEAD authentication (§5.2.1)."""
    _, dec = aead_pair("aes-128-gcm")
    rng = random.Random(4)
    garbage = bytes(rng.randrange(256) for _ in range(16 + 35))
    with pytest.raises(AuthenticationError):
        dec.decrypt(garbage)


def test_aead_buffered_counts_post_salt_bytes():
    _, dec = aead_pair("aes-256-gcm")
    dec.feed(bytes(40))  # salt is 32; 8 bytes buffered beyond it
    assert dec.salt_complete and dec.buffered == 8


def test_salt_uniqueness_across_sessions():
    rng = random.Random(5)
    enc1 = AeadEncryptor("aes-256-gcm", bytes(32), rng=rng)
    enc2 = AeadEncryptor("aes-256-gcm", bytes(32), rng=rng)
    assert enc1.salt != enc2.salt


def test_stream_rejects_aead_method():
    with pytest.raises(ValueError):
        StreamEncryptor("aes-128-gcm", bytes(16))


def test_aead_rejects_stream_method():
    with pytest.raises(ValueError):
        AeadEncryptor("aes-128-ctr", bytes(16))
