"""Analysis layer: classification, fingerprinting, stats, overlap."""

import random

import pytest

from repro.analysis import (
    ECDF,
    PAPER_FIG4_REGIONS,
    classify_payload,
    cluster_tsval_sequences,
    ip_id_statistics,
    port_statistics,
    probes_per_ip,
    render_histogram,
    render_table,
    synthesize_historical_sets,
    tally,
    top_n,
    ttl_statistics,
    venn3,
)
from repro.gfw import ProbeForge, ProbeType

LEGIT = [bytes(range(100, 200)), bytes(range(50, 120))]


def test_classify_identical():
    probe_type, matched = classify_payload(LEGIT[0], LEGIT)
    assert probe_type == ProbeType.R1 and matched == LEGIT[0]


@pytest.mark.parametrize("ptype", [ProbeType.R2, ProbeType.R3, ProbeType.R4,
                                   ProbeType.R5, ProbeType.R6])
def test_classify_byte_changed(ptype):
    forge = ProbeForge(random.Random(1))
    probe = forge.replay(LEGIT[0], ptype)
    got, matched = classify_payload(probe.payload, LEGIT)
    assert got == ptype and matched == LEGIT[0]


def test_classify_nr_lengths():
    rng = random.Random(2)
    assert classify_payload(bytes(rng.randrange(256) for _ in range(221)), LEGIT)[0] == ProbeType.NR2
    assert classify_payload(bytes(rng.randrange(256) for _ in range(12)), LEGIT)[0] == ProbeType.NR1
    assert classify_payload(bytes(rng.randrange(256) for _ in range(53)), LEGIT)[0] == ProbeType.NR3


def test_classify_unknown():
    assert classify_payload(bytes(500), LEGIT)[0] == "UNKNOWN"


def test_classify_r2_not_confused_with_r3():
    """A diff only at byte 0 must be R2, even though R3's set includes 0."""
    payload = bytearray(LEGIT[0])
    payload[0] ^= 0xFF
    assert classify_payload(bytes(payload), LEGIT)[0] == ProbeType.R2


# ----------------------------------------------------------- fingerprinting


def test_tsval_clustering_recovers_processes():
    rng = random.Random(3)
    truth = [(250.0, rng.randrange(1 << 32)) for _ in range(4)]
    truth.append((1009.0, rng.randrange(1 << 32)))
    points = []
    for rate, offset in truth:
        for _ in range(40):
            t = rng.uniform(0, 50000)
            points.append((t, int(offset + rate * t) % (1 << 32)))
    clusters = cluster_tsval_sequences(points)
    big = [c for c in clusters if c.size >= 10]
    assert len(big) == len(truth)
    rates = sorted(c.rate_hz for c in big)
    assert rates.count(250.0) == 4
    assert rates[-1] == 1009.0


def test_tsval_cluster_measured_rate():
    points = [(t, int(12345 + 250 * t)) for t in range(0, 1000, 10)]
    clusters = cluster_tsval_sequences(points)
    assert clusters[0].measured_rate() == pytest.approx(250.0, rel=0.01)


def test_tsval_clustering_survives_wraparound():
    start = (1 << 32) - 10000
    points = [(t, int(start + 250 * t) % (1 << 32)) for t in range(0, 200, 5)]
    clusters = cluster_tsval_sequences(points)
    assert clusters[0].size == len(points)
    assert clusters[0].measured_rate() == pytest.approx(250.0, rel=0.01)


def test_port_statistics():
    ports = [40000] * 90 + [2000] * 10
    stats = port_statistics(ports)
    assert stats["linux_range_share"] == pytest.approx(0.9)
    assert stats["below_1024"] == 0
    assert stats["min"] == 2000


def test_ttl_statistics():
    assert ttl_statistics([46, 50, 48]) == {"min": 46, "max": 50, "count": 3}


def test_ip_id_randomness():
    rng = random.Random(4)
    stats = ip_id_statistics([rng.randrange(1 << 16) for _ in range(2000)])
    assert stats["distinct_fraction"] > 0.95
    assert abs(stats["lag1_autocorr"]) < 0.1


# -------------------------------------------------------------------- stats


def test_ecdf():
    cdf = ECDF([1, 2, 3, 4])
    assert cdf(0) == 0.0
    assert cdf(2) == 0.5
    assert cdf(10) == 1.0
    assert cdf.quantile(0.5) == 3
    assert (cdf.min, cdf.max) == (1, 4)


def test_ecdf_validation():
    with pytest.raises(ValueError):
        ECDF([])
    with pytest.raises(ValueError):
        ECDF([1]).quantile(2)


def test_tally_and_top_n():
    counts = tally("abracadabra")
    assert counts["a"] == 5
    assert top_n(counts, 1) == [("a", 5)]
    assert probes_per_ip(["1.1.1.1", "1.1.1.1", "2.2.2.2"])["1.1.1.1"] == 2


# ------------------------------------------------------------------ overlap


def test_venn3_regions():
    ss = {"a", "b", "c", "x"}
    d = {"x", "y"}
    e = {"c", "y", "z"}
    regions = venn3(ss, d, e)
    assert regions["ss_only"] == 2
    assert regions["ss_d"] == 1
    assert regions["ss_e"] == 1
    assert regions["d_e"] == 1
    assert regions["ss_d_e"] == 0


def test_synthesized_history_matches_paper_regions():
    rng = random.Random(5)
    from repro.net import ASDatabase

    asdb = ASDatabase()
    current = set()
    while len(current) < 12300:
        current.add(asdb.sample_ip(rng))
    current = list(current)
    dunna, ensafi = synthesize_historical_sets(current, rng)
    regions = venn3(set(current), dunna, ensafi)
    assert regions == PAPER_FIG4_REGIONS


def test_synthesize_requires_enough_current_ips():
    rng = random.Random(6)
    with pytest.raises(ValueError):
        synthesize_historical_sets(["1.2.3.4"], rng)


# ---------------------------------------------------------------- rendering


def test_render_table():
    out = render_table(["a", "bb"], [[1, 22], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "333" in lines[3]


def test_render_histogram():
    out = render_histogram({1: 10, 2: 5})
    assert "#" in out
    assert render_histogram({}) == "(empty)"
