"""AES block cipher against FIPS 197 / SP 800-38A vectors."""

import pytest

from repro.crypto import AES


def test_fips197_aes128():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(pt).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_fips197_aes192():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(pt).hex() == "dda97ca4864cdfe06eaf70a0ec0d7191"


def test_fips197_aes256():
    key = bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"
    )
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    assert AES(key).encrypt_block(pt).hex() == "8ea2b7ca516745bfeafc49904b496089"


def test_sp80038a_ecb_aes128_first_block():
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
    assert AES(key).encrypt_block(pt).hex() == "3ad77bb40d7a3660a89ecaf32466ef97"


def test_zero_key_zero_block():
    assert AES(bytes(16)).encrypt_block(bytes(16)).hex() == (
        "66e94bd4ef8a2c3b884cfa59ca342b2e"
    )


def test_rejects_bad_key_length():
    with pytest.raises(ValueError):
        AES(bytes(15))
    with pytest.raises(ValueError):
        AES(bytes(33))


def test_rejects_bad_block_length():
    with pytest.raises(ValueError):
        AES(bytes(16)).encrypt_block(bytes(15))


def test_deterministic():
    cipher = AES(b"0123456789abcdef")
    block = b"fedcba9876543210"
    assert cipher.encrypt_block(block) == cipher.encrypt_block(block)
