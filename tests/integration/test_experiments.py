"""Experiment harnesses produce the paper's qualitative results at small scale."""

import pytest

from repro.experiments import (
    BlockingExperimentConfig,
    BrdgrdExperimentConfig,
    ShadowsocksExperimentConfig,
    SinkExperimentConfig,
    run_blocking_experiment,
    run_brdgrd_experiment,
    run_shadowsocks_experiment,
    run_sink_experiment,
)
from repro.gfw import ProbeType


SMALL_SS = ShadowsocksExperimentConfig(connections_per_pair=120,
                                       duration=36 * 3600.0)


@pytest.fixture(scope="module")
def ss_result():
    return run_shadowsocks_experiment(SMALL_SS)


def test_shadowsocks_exp_probes_sent(ss_result):
    assert len(ss_result.probe_log) > 30
    assert ss_result.control_probe_count == 0


def test_shadowsocks_exp_replays_dominate(ss_result):
    counts = ss_result.probes_by_type
    assert counts.get(ProbeType.R1, 0) > counts.get(ProbeType.NR2, 0)


def test_shadowsocks_exp_stage2_only_outline(ss_result):
    for name, probes in ss_result.server_probes.items():
        types = {p.probe_type for p in probes}
        if name.startswith("outline"):
            assert types & {ProbeType.R3, ProbeType.R4}
        else:
            assert not types & {ProbeType.R3, ProbeType.R4, ProbeType.R5}


def test_shadowsocks_exp_server_side_classification_agrees(ss_result):
    """Server-capture classification reproduces the GFW-side probe log."""
    observed = sum(len(v) for v in ss_result.server_probes.values())
    unknown = sum(
        1 for probes in ss_result.server_probes.values()
        for p in probes if p.probe_type == "UNKNOWN"
    )
    assert observed > 0
    assert unknown / observed < 0.05


def test_shadowsocks_exp_delays_match_model(ss_result):
    first, all_delays = ss_result.replay_delays
    assert len(all_delays) >= len(first) > 0
    assert min(all_delays) >= 0.28


def test_sink_exp_1a_no_stage2():
    res = run_sink_experiment(
        SinkExperimentConfig.table4("1.a", connections=1500, duration=12 * 3600)
    )
    types = set(res.probes_by_type())
    assert types <= {ProbeType.R1, ProbeType.R2, ProbeType.NR2, ProbeType.NR3}
    assert ProbeType.R1 in types


def test_sink_exp_switch_triggers_stage2():
    """Exp 1.a -> 1.b: R3/R4 appear soon after the server starts responding."""
    res = run_sink_experiment(SinkExperimentConfig(
        mode="switch", connections=1500, duration=24 * 3600,
        switch_after=12 * 3600, seed=2,
    ))
    before = [r for r in res.probe_log if r.time_sent < 12 * 3600]
    after = [r for r in res.probe_log if r.time_sent >= 12 * 3600]
    assert not any(r.probe_type in (ProbeType.R3, ProbeType.R4) for r in before)
    assert any(r.probe_type in (ProbeType.R3, ProbeType.R4) for r in after)


def test_sink_exp_low_entropy_draws_fewer_probes():
    high = run_sink_experiment(
        SinkExperimentConfig.table4("1.a", connections=1200, duration=12 * 3600)
    )
    low = run_sink_experiment(
        SinkExperimentConfig.table4("2", connections=1200, duration=12 * 3600)
    )
    assert len(low.probe_log) < len(high.probe_log) / 2


def test_sink_exp_replay_lengths_in_band():
    res = run_sink_experiment(
        SinkExperimentConfig.table4("1.a", connections=1500, duration=12 * 3600)
    )
    lengths = res.replay_lengths()
    in_core = sum(1 for l in lengths if 160 <= l <= 700)
    assert in_core / len(lengths) > 0.8
    assert max(lengths) <= 999


def test_brdgrd_exp_probing_collapses():
    res = run_brdgrd_experiment(BrdgrdExperimentConfig(
        duration=24 * 3600.0,
        brdgrd_windows=((8 * 3600.0, 16 * 3600.0),),
    ))
    active, inactive = res.window_rates()
    assert inactive > 0
    assert active < inactive / 4
    assert len(res.control_syn_times) > 0


def test_blocking_exp_only_vulnerable_blocked():
    res = run_blocking_experiment(BlockingExperimentConfig())
    assert 0 < res.blocked_fraction < 0.5
    assert set(res.blocked_profiles) <= {"ssr", "ss-python", "outline-1.0.6"}
    # Everyone got probed, few got blocked — the §6 asymmetry.
    assert len(res.probes_per_server) == len(res.server_profiles)
