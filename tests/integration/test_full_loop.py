"""Full-loop integration: client -> GFW -> server, probes and blocking."""

import random

import pytest

from repro.runtime.topology import build_world
from repro.gfw import (
    BlockingPolicy,
    DetectorConfig,
    ProbeType,
    Reaction,
    SchedulerConfig,
)
from repro.net import lookup_asn
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer
from repro.workloads import CurlDriver

AGGRESSIVE_DETECTOR = DetectorConfig(base_rate=1.0, length_filter=False,
                                     entropy_filter=False)


def tunnel_world(profile, method="chacha20-ietf-poly1305", seed=1,
                 scheduler_config=None, blocking_policy=None):
    world = build_world(
        seed=seed,
        detector_config=AGGRESSIVE_DETECTOR,
        scheduler_config=scheduler_config,
        blocking_policy=blocking_policy or BlockingPolicy(human_gated=True),
        websites=["www.wikipedia.org", "example.com", "gfw.report"],
    )
    server_host = world.add_server("ss-server", region="uk")
    client_host = world.add_client("client")
    server = ShadowsocksServer(server_host, 8388, "pw", method, profile)
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw", method)
    driver = CurlDriver(client, rng=random.Random(seed), target_port=443)
    return world, server_host, client_host, driver


def probes_received(server_host, port=8388):
    """Prober SYNs seen at the server, excluding the client's own."""
    return [
        r.segment for r in server_host.capture.syns_received()
        if r.segment.dst_port == port and lookup_asn(r.segment.src_ip) is not None
    ]


def test_probes_arrive_after_legit_connections():
    world, server_host, client_host, driver = tunnel_world("outline-1.0.7")
    driver.run_schedule(count=30, interval=10.0)
    world.sim.run(until=3 * 3600)
    probes = probes_received(server_host)
    assert len(probes) > 5
    # Probe fingerprints: Chinese source, TTL 46-50 on arrival.
    for seg in probes:
        assert 46 <= seg.ttl <= 50


def test_replay_probes_match_recorded_payloads():
    world, server_host, client_host, driver = tunnel_world("outline-1.0.7")
    driver.run_schedule(count=20, interval=10.0)
    world.sim.run(until=2 * 3600)
    log = world.gfw.probe_log
    replays = [r for r in log if r.probe.is_replay]
    assert replays
    # Identical replays reproduce a payload the client actually sent.
    sent_payloads = {
        bytes(rec.segment.payload)
        for rec in client_host.capture.sent()
        if rec.segment.is_data
    }
    r1 = [r for r in replays if r.probe_type == ProbeType.R1]
    assert r1 and all(r.probe.payload in sent_payloads for r in r1)


def test_outline_enters_stage2_libev_does_not():
    results = {}
    for profile in ("outline-1.0.7", "ss-libev-3.3.1"):
        world, server_host, _, driver = tunnel_world(profile, seed=3)
        driver.run_schedule(count=25, interval=10.0)
        world.sim.run(until=12 * 3600)
        types = {r.probe_type for r in world.gfw.probe_log}
        stages = [s.stage for s in world.gfw.scheduler.servers.values()]
        results[profile] = (types, max(stages) if stages else 1)
    outline_types, outline_stage = results["outline-1.0.7"]
    libev_types, libev_stage = results["ss-libev-3.3.1"]
    assert outline_stage == 2
    assert ProbeType.R3 in outline_types or ProbeType.R4 in outline_types
    assert libev_stage == 1
    assert ProbeType.R3 not in libev_types and ProbeType.R4 not in libev_types


def test_control_host_receives_no_probes():
    world, server_host, client_host, driver = tunnel_world("outline-1.0.7")
    control = world.add_server("control", region="uk")
    driver.run_schedule(count=20, interval=10.0)
    world.sim.run(until=2 * 3600)
    assert len(probes_received(server_host)) > 0
    assert len(control.capture.syns_received()) == 0


def test_bidirectional_triggering():
    """A Shadowsocks server *inside* China is probed as well (§4.2)."""
    world = build_world(seed=4, detector_config=AGGRESSIVE_DETECTOR,
                        websites=["example.com"])
    server_host = world.add_client("inside-server", residential=True)
    client_host = world.add_server("outside-client", region="us")
    ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                      "outline-1.0.7")
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "chacha20-ietf-poly1305")
    driver = CurlDriver(client, rng=random.Random(4), sites=["example.com"])
    driver.run_schedule(count=15, interval=10.0)
    world.sim.run(until=2 * 3600)
    # Probes come from fleet IPs inside China to the inside server: they do
    # not cross the border... but the paper observed inside servers being
    # probed, so the fleet reaches inside targets too.
    assert len(probes_received(server_host)) > 0


def test_probe_reactions_recorded():
    world, server_host, _, driver = tunnel_world("ss-libev-3.0.8",
                                                 method="aes-256-gcm", seed=5)
    driver.run_schedule(count=25, interval=10.0)
    world.sim.run(until=6 * 3600)
    reactions = {r.reaction for r in world.gfw.probe_log if r.reaction}
    # Old libev RSTs replayed salts (replay filter) and garbage.
    assert Reaction.RST in reactions


def test_blocking_unidirectional():
    policy = BlockingPolicy(human_gated=False, block_probability=1.0,
                            block_by_ip_probability=0.0)
    world, server_host, client_host, driver = tunnel_world(
        "outline-1.0.6", seed=6, blocking_policy=policy
    )
    driver.run_schedule(count=25, interval=10.0)
    world.sim.run(until=12 * 3600)
    assert world.gfw.blocking.blocked_count >= 1
    assert world.gfw.blocking.is_blocked(server_host.ip, 8388)
    # New connection now fails: SYN/ACK (server->client) is dropped.
    before_drops = world.gfw.dropped_segments
    conn = client_host.connect(server_host.ip, 8388)
    world.sim.run(until=world.sim.now + 60)
    assert conn.state == "SYN_SENT"  # handshake never completes
    assert world.gfw.dropped_segments > before_drops
    # Client->server direction still passes: the server saw the SYN.
    syns = [r for r in server_host.capture.syns_received()
            if r.segment.src_ip == client_host.ip]
    assert syns


def test_unblocking_after_policy_window():
    policy = BlockingPolicy(human_gated=False, block_probability=1.0,
                            unblock_after=3600.0, unblock_jitter=0.0)
    world, server_host, client_host, driver = tunnel_world(
        "outline-1.0.6", seed=7, blocking_policy=policy
    )
    driver.run_schedule(count=25, interval=10.0)
    world.sim.run(until=6 * 3600)
    assert world.gfw.blocking.events  # got blocked at some point
    world.sim.run(until=world.sim.now + policy.unblock_after + 3700)
    event = world.gfw.blocking.events[0]
    assert not world.gfw.blocking.is_blocked(event.ip, event.port or 8388) or (
        len(world.gfw.blocking.events) > 1  # re-blocked by later evidence
    )


def test_human_gated_blocking_respects_sensitive_periods():
    policy = BlockingPolicy(
        human_gated=True,
        sensitive_periods=[(10 * 3600, 20 * 3600)],
        block_probability=1.0,
    )
    world, server_host, _, driver = tunnel_world(
        "outline-1.0.6", seed=8, blocking_policy=policy
    )
    driver.run_schedule(count=30, interval=10.0)
    world.sim.run(until=9 * 3600)
    assert world.gfw.blocking.blocked_count == 0  # gate closed so far
