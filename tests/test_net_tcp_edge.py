"""TCP edge cases: misuse errors, idempotency, close-state sends."""

import pytest

from repro.net import Host, Network, Simulator, TcpState


def pair():
    sim = Simulator()
    net = Network(sim)
    a = Host(sim, net, "10.0.0.1")
    b = Host(sim, net, "10.0.0.2")
    return sim, net, a, b


def test_double_open_raises():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    conn = a.connect("10.0.0.2", 80)
    with pytest.raises(RuntimeError):
        conn.open()


def test_send_after_close_raises():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    conn = a.connect("10.0.0.2", 80)
    conn.on_connected = conn.close
    sim.run(until=5)
    with pytest.raises(RuntimeError):
        conn.send(b"late")


def test_abort_idempotent():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    conn = a.connect("10.0.0.2", 80)
    sim.run(until=5)
    conn.abort()
    conn.abort()  # second abort is a no-op
    assert conn.state == TcpState.CLOSED


def test_close_before_established_then_delivers():
    """close() with queued data still flushes the data before the FIN."""
    sim, net, a, b = pair()
    got = bytearray()
    fin = []

    def app(conn):
        conn.on_data = got.extend
        conn.on_remote_fin = lambda: fin.append(True)

    b.listen(80, app)
    conn = a.connect("10.0.0.2", 80)
    conn.send(b"flush me")
    conn.close()
    sim.run(until=5)
    assert bytes(got) == b"flush me"
    assert fin == [True]


def test_send_in_close_wait():
    """After the peer FINs, our side can still send (half-close)."""
    sim, net, a, b = pair()
    server_conns = []

    def app(conn):
        server_conns.append(conn)
        conn.on_data = lambda d: None

    b.listen(80, app)
    conn = a.connect("10.0.0.2", 80)
    got = bytearray()
    conn.on_data = got.extend
    conn.on_connected = lambda: (conn.send(b"x"), conn.close())
    sim.run(until=5)
    (sconn,) = server_conns
    assert sconn.state == TcpState.CLOSE_WAIT
    sconn.send(b"late reply")
    sconn.close()
    sim.run(until=10)
    assert bytes(got) == b"late reply"
    assert sconn.state == TcpState.CLOSED  # LAST_ACK completed


def test_empty_send_noop():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    conn = a.connect("10.0.0.2", 80)
    sim.run(until=5)
    before = len(a.capture.sent())
    conn.send(b"")
    assert len(a.capture.sent()) == before


def test_close_idempotent():
    sim, net, a, b = pair()
    b.listen(80, lambda c: setattr(c, "on_remote_fin", c.close))
    conn = a.connect("10.0.0.2", 80)
    conn.on_connected = lambda: (conn.close(), conn.close())
    sim.run(until=5)
    fins = [r for r in a.capture.sent() if r.segment.has(0x01)]
    assert len(fins) == 1


def test_listen_port_conflict():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    with pytest.raises(ValueError):
        b.listen(80, lambda c: None)
    b.unlisten(80)
    b.listen(80, lambda c: None)  # rebindable after unlisten


def test_ephemeral_ports_wrap():
    sim, net, a, b = pair()
    a._next_ephemeral = 60998
    ports = [a.alloc_port() for _ in range(4)]
    assert ports == [60998, 60999, 32768, 32769]


def test_connection_collision_rejected():
    sim, net, a, b = pair()
    b.listen(80, lambda c: None)
    a.connect("10.0.0.2", 80, src_port=5555)
    with pytest.raises(ValueError):
        a.connect("10.0.0.2", 80, src_port=5555)
