"""CTR/CFB modes against SP 800-38A vectors, plus incremental-state checks."""

import pytest

from repro.crypto import CFBMode, CTRMode

KEY128 = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
CTR_IV = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
CFB_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
CTR_CIPHERTEXT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)
CFB_CIPHERTEXT = bytes.fromhex(
    "3b3fd92eb72dad20333449f8e83cfb4a"
    "c8a64537a0b3a93fcde3cdad9f1ce58b"
    "26751f67a3cbb140b1808cf187a4f4df"
    "c04b05357c5d1c0eeac4c66f9ff7f2e6"
)


def test_ctr_sp80038a():
    assert CTRMode(KEY128, CTR_IV).encrypt(PLAINTEXT) == CTR_CIPHERTEXT


def test_ctr_roundtrip_incremental():
    enc = CTRMode(KEY128, CTR_IV)
    dec = CTRMode(KEY128, CTR_IV)
    # Feed in awkward chunk sizes; state must carry across calls.
    ct = b"".join(enc.encrypt(PLAINTEXT[i : i + 7]) for i in range(0, len(PLAINTEXT), 7))
    assert ct == CTR_CIPHERTEXT
    pt = b"".join(dec.decrypt(ct[i : i + 5]) for i in range(0, len(ct), 5))
    assert pt == PLAINTEXT


def test_ctr_counter_wraps():
    iv = bytes([0xFF] * 16)
    mode = CTRMode(KEY128, iv)
    out = mode.encrypt(bytes(32))  # crosses the 2^128 boundary
    ref0 = CTRMode(KEY128, iv).encrypt(bytes(16))
    ref1 = CTRMode(KEY128, bytes(16)).encrypt(bytes(16))
    assert out == ref0 + ref1


def test_cfb_sp80038a_encrypt():
    assert CFBMode(KEY128, CFB_IV, encrypt=True).process(PLAINTEXT) == CFB_CIPHERTEXT


def test_cfb_sp80038a_decrypt():
    assert CFBMode(KEY128, CFB_IV, encrypt=False).process(CFB_CIPHERTEXT) == PLAINTEXT


def test_cfb_incremental_matches_oneshot():
    enc = CFBMode(KEY128, CFB_IV, encrypt=True)
    ct = b"".join(enc.process(PLAINTEXT[i : i + 3]) for i in range(0, len(PLAINTEXT), 3))
    assert ct == CFB_CIPHERTEXT
    dec = CFBMode(KEY128, CFB_IV, encrypt=False)
    pt = b"".join(dec.process(ct[i : i + 11]) for i in range(0, len(ct), 11))
    assert pt == PLAINTEXT


def test_iv_length_validated():
    with pytest.raises(ValueError):
        CTRMode(KEY128, bytes(8))
    with pytest.raises(ValueError):
        CFBMode(KEY128, bytes(12), encrypt=True)


def test_ctr_multi_megabyte_single_call():
    # The old implementation grew an immutable keystream with += per
    # block, making one large call quadratic; this finishes fast only
    # with batched keystream generation into a cursor-consumed buffer.
    data = bytes(range(256)) * (3 * 1024 * 4)  # 3 MiB
    whole = CTRMode(KEY128, CTR_IV).process(data)
    # Same bytes as chunked processing, and self-inverse.
    chunked = CTRMode(KEY128, CTR_IV)
    mid = len(data) // 2 + 7
    assert chunked.process(data[:mid]) + chunked.process(data[mid:]) == whole
    assert CTRMode(KEY128, CTR_IV).process(whole) == data
