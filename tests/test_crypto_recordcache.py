"""AEAD record-memo transparency and the randutil draw-stream contract."""

import random

import pytest

from repro.crypto import recordcache
from repro.crypto._reference import ReferenceAESGCM, ReferenceChaCha20Poly1305
from repro.crypto.aead import AESGCM, AuthenticationError, ChaCha20Poly1305
from repro.randutil import byte_draws

KEY = bytes(range(32))
NONCE = bytes(12)


@pytest.fixture(autouse=True)
def fresh_cache():
    recordcache.clear()
    yield
    recordcache.clear()


def test_open_hits_the_entry_a_seal_installed():
    aead = ChaCha20Poly1305(KEY)
    sealed = aead.seal(NONCE, b"payload")
    calls = []
    original = aead._open
    aead._open = lambda *a: calls.append(a) or original(*a)
    assert aead.open(NONCE, sealed) == b"payload"
    assert calls == []          # pure memo hit, no recomputation


def test_tampered_record_misses_the_cache_and_fails_auth():
    aead = ChaCha20Poly1305(KEY)
    sealed = aead.seal(NONCE, b"payload")
    tampered = bytes([sealed[0] ^ 1]) + sealed[1:]
    with pytest.raises(AuthenticationError):
        aead.open(NONCE, tampered)


def test_same_key_size_ciphers_never_share_entries():
    # AES-256-GCM and ChaCha20-Poly1305 both take 32-byte keys; with the
    # algorithm missing from the memo key, whichever sealed first used
    # to poison the other's identical (key, nonce, plaintext) triple.
    chacha = ChaCha20Poly1305(bytes(32)).seal(NONCE, b"")
    gcm = AESGCM(bytes(32)).seal(NONCE, b"")
    assert chacha == ReferenceChaCha20Poly1305(bytes(32)).seal(NONCE, b"")
    assert gcm == ReferenceAESGCM(bytes(32)).seal(NONCE, b"")
    assert chacha != gcm


def test_disabled_cache_still_round_trips(monkeypatch):
    monkeypatch.setattr(recordcache, "_enabled", False)
    aead = AESGCM(KEY[:16])
    sealed = aead.seal(NONCE, b"payload")
    assert aead.open(NONCE, sealed) == b"payload"
    assert recordcache._cache == {}


def test_cache_clears_wholesale_when_full(monkeypatch):
    monkeypatch.setattr(recordcache, "MAX_ENTRIES", 8)
    aead = ChaCha20Poly1305(KEY)
    for i in range(16):
        aead.seal(i.to_bytes(12, "little"), b"x")
    assert len(recordcache._cache) <= 8 + 1


def test_oversized_records_bypass_the_cache():
    aead = ChaCha20Poly1305(KEY)
    big = bytes(recordcache.MAX_RECORD + 1)
    sealed = aead.seal(NONCE, big)
    assert recordcache._cache == {}
    assert aead.open(NONCE, sealed) == big


def test_byte_draws_matches_randrange_stream():
    # byte_draws must consume the generator exactly like the randrange
    # loop it replaces: same bytes out, same state after.
    a, b = random.Random(1234), random.Random(1234)
    assert byte_draws(a, 999) == bytes(b.randrange(256) for _ in range(999))
    assert a.random() == b.random()


def test_randbelow_matches_randrange_for_ip_ids():
    a, b = random.Random(77), random.Random(77)
    assert [a._randbelow(1 << 16) for _ in range(500)] == \
        [b.randrange(1 << 16) for _ in range(500)]
    assert a.getrandbits(32) == b.getrandbits(32)
