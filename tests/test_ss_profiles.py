"""Behaviour-profile registry and the §11 post-disclosure implementations."""

import pytest

from repro.gfw import ProbeType
from repro.probesim import ProberSimulator, ReactionKind
from repro.shadowsocks import all_profiles, get_profile, profiles_for


def test_registry_contents():
    names = {p.name for p in all_profiles()}
    for expected in ("ss-libev-3.0.8", "ss-libev-3.3.3", "outline-1.0.6",
                     "outline-1.1.0", "ss-python", "ssr", "ss-rust-1.8.4",
                     "ss-rust-1.8.5", "go-shadowsocks2"):
        assert expected in names


def test_get_profile_error_lists_known():
    with pytest.raises(ValueError, match="outline-1.0.6"):
        get_profile("no-such-impl")


def test_profiles_for_family():
    libev = profiles_for("ss-libev")
    assert len(libev) == 5
    assert all(p.name.startswith("ss-libev-") for p in libev)
    with pytest.raises(ValueError):
        profiles_for("unknown-family")


def test_profile_validation():
    from repro.shadowsocks import BehaviorProfile

    with pytest.raises(ValueError):
        BehaviorProfile(name="x", display="x", supports_stream=False,
                        supports_aead=False, replay_filter=False,
                        mask_atyp=False, error_action="rst",
                        aead_waits_for_payload_tag=False)
    with pytest.raises(ValueError):
        BehaviorProfile(name="x", display="x", supports_stream=True,
                        supports_aead=False, replay_filter=False,
                        mask_atyp=False, error_action="explode",
                        aead_waits_for_payload_tag=False)


def test_server_rejects_unsupported_construction():
    from repro.net import Host, Network, Simulator
    from repro.shadowsocks import ShadowsocksServer

    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "10.0.0.1")
    with pytest.raises(ValueError):
        ShadowsocksServer(host, 8388, "pw", "aes-256-ctr", "outline-1.0.7")
    with pytest.raises(ValueError):
        ShadowsocksServer(host, 8389, "pw", "aes-256-gcm", "ssr")


def test_ss_rust_replay_defense_added_in_185():
    """§11: shadowsocks-rust v1.8.5 gained replay defense."""
    for profile, expect_data in (("ss-rust-1.8.4", True), ("ss-rust-1.8.5", False)):
        sim = ProberSimulator(profile, "aes-256-gcm", seed=1)
        payload = sim.record_legitimate_payload()
        result = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
        assert (result.reaction == ReactionKind.DATA) is expect_data, profile


def test_ss_rust_no_atyp_mask():
    """Unmasked implementations reset ~253/256 of valid-length random
    probes instead of ~13/16."""
    from repro.probesim import build_random_probe_row

    row = build_random_probe_row("ss-rust-1.8.4", "aes-256-ctr", [33],
                                 trials=60, seed=2)
    assert row.cells[33].fraction(ReactionKind.RST) > 0.93


def test_go_shadowsocks2_tunnel_works():
    from repro.probesim import ProberSimulator

    sim = ProberSimulator("go-shadowsocks2", "chacha20-ietf-poly1305")
    payload = sim.record_legitimate_payload()
    assert len(payload) > 50
