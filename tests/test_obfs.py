"""Tor bridge transports: wire formats, tunnel round-trips, probe grading."""

import random

import pytest

from repro.net import Host, Network, Simulator
from repro.obfs import (
    OBFS3_HANDSHAKE_LEN,
    OBFS_PROFILES,
    FrameCodec,
    ObfsClient,
    ObfsServer,
    node_key,
    obfs4_handshake,
    parse_versions_cell,
    tor_versions_cell,
)
from repro.obfs.wire import obfs4_decode_pad_len, obfs4_mac


# ------------------------------------------------------------------- wire


def test_versions_cell_round_trip():
    assert parse_versions_cell(tor_versions_cell((3, 4, 5))) == (3, 4, 5)
    assert parse_versions_cell(b"\x00\x00\x06\x00\x02\x00\x03") is None
    assert parse_versions_cell(b"\x00") is None


def test_versions_cell_rejects_odd_body():
    cell = b"\x00\x00\x07\x00\x03abc"
    assert parse_versions_cell(cell) is None


def test_frame_codec_round_trip_across_fragmentation():
    key = node_key("bridge")
    tx, rx = FrameCodec(key, "c2s"), FrameCodec(key, "c2s")
    wire = tx.encode(b"hello") + tx.encode(b"") + tx.encode(b"world" * 100)
    frames = []
    for i in range(0, len(wire), 7):   # deliver in odd-sized chunks
        frames.extend(rx.feed(wire[i:i + 7]))
    assert frames == [b"hello", b"", b"world" * 100]


def test_frame_codec_directions_do_not_collide():
    key = node_key("bridge")
    encoded = FrameCodec(key, "c2s").encode(b"payload")
    assert FrameCodec(key, "s2c").feed(encoded) != [b"payload"]


def test_obfs4_handshake_decodes_with_key():
    key = node_key("b2")
    hs = obfs4_handshake(key, "c2s", random.Random(3))
    pad_len = obfs4_decode_pad_len(hs[:2], key, "c2s")
    assert len(hs) == 2 + pad_len + 16
    assert obfs4_mac(key, hs[:-16]) == hs[-16:]


# ----------------------------------------------------------------- tunnel


def _world(profile):
    sim = Simulator()
    net = Network(sim)
    client_host = Host(sim, net, "192.0.2.10", "client")
    bridge_host = Host(sim, net, "198.51.100.5", "bridge")
    target_host = Host(sim, net, "203.0.113.80", "web")
    target_host.listen(80, lambda conn: setattr(
        conn, "on_data", lambda data: conn.send(b"HTTP/1.1 200 OK\r\n\r\nhi")))
    net.register_name("example.com", "203.0.113.80")
    ObfsServer(bridge_host, 443, "bridge", profile)
    client = ObfsClient(client_host, "198.51.100.5", 443, "bridge",
                        profile=profile)
    return sim, client


@pytest.mark.parametrize("profile", OBFS_PROFILES)
def test_roundtrip_through_bridge(profile):
    sim, client = _world(profile)
    session = client.open("example.com", 80, b"GET / HTTP/1.1\r\n\r\n")
    sim.run(until=30)
    assert bytes(session.reply) == b"HTTP/1.1 200 OK\r\n\r\nhi"


def test_unknown_profile_rejected():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "192.0.2.1", "h")
    with pytest.raises(ValueError):
        ObfsServer(host, 443, "bridge", "obfs9")
    with pytest.raises(ValueError):
        ObfsClient(host, "192.0.2.2", 443, "bridge", profile="obfs9")


# ---------------------------------------------------- probe-facing grading


def _probe(profile, payload, until=300):
    """Send one raw payload at the bridge; return (session state, reply)."""
    sim = Simulator()
    net = Network(sim)
    prober_host = Host(sim, net, "192.0.2.99", "prober")
    bridge_host = Host(sim, net, "198.51.100.5", "bridge")
    server = ObfsServer(bridge_host, 443, "bridge", profile)
    got = bytearray()
    conn = prober_host.connect("198.51.100.5", 443)
    conn.on_connected = lambda: conn.send(payload)
    conn.on_data = got.extend
    closed = []
    conn.on_remote_fin = lambda: closed.append(True)
    sim.run(until=until)
    return server, bytes(got), bool(closed)


def test_vanilla_answers_forged_versions_probe():
    _, reply, _ = _probe("tor-vanilla", tor_versions_cell())
    assert parse_versions_cell(reply) is not None


def test_vanilla_closes_on_garbage():
    _, reply, closed = _probe("tor-vanilla",
                              bytes(random.Random(7).randrange(256)
                                    for _ in range(200)))
    assert reply == b"" and closed


def test_obfs3_answers_any_full_size_block():
    rng = random.Random(8)
    block = bytes(rng.randrange(256) for _ in range(OBFS3_HANDSHAKE_LEN))
    _, reply, _ = _probe("obfs3", block)
    assert len(reply) == OBFS3_HANDSHAKE_LEN


def test_obfs3_ignores_short_probe():
    _, reply, closed = _probe("obfs3", tor_versions_cell(), until=60)
    assert reply == b"" and not closed


def test_obfs4_drains_unauthenticated_probes():
    rng = random.Random(9)
    block = bytes(rng.randrange(256) for _ in range(300))
    server, reply, closed = _probe("obfs4", block, until=60)
    assert reply == b"" and not closed
    assert server.sessions[0].state == server.sessions[0].DRAIN


def test_obfs4_accepts_keyed_handshake():
    key = node_key("bridge")
    hs = obfs4_handshake(key, "c2s", random.Random(10))
    server, reply, _ = _probe("obfs4", hs)
    assert len(reply) > 0   # the mirrored server handshake
    assert server.sessions[0].state != server.sessions[0].DRAIN
