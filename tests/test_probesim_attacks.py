"""Historical stream-cipher attacks (§2.1): ATYP scan and redirect oracle."""

import pytest

from repro.probesim import ProberSimulator, ReactionKind, atyp_scan, redirect_attack

APP = b"GET /secret HTTP/1.1\r\nCookie: sessionid=hunter2\r\n\r\n"


def recorded(profile, method, seed=0):
    sim = ProberSimulator(profile, method, seed=seed)
    payload = sim.record_legitimate_payload(APP, target=("target.example", 80))
    return sim, payload


# -------------------------------------------------------------- ATYP scan


def test_atyp_scan_masked_fraction():
    """Against a masked, filterless stream server, ~3/16 of deltas react
    differently from the RST majority (BreakWa11's measurement)."""
    sim, payload = recorded("ssr", "aes-256-ctr")
    result = atyp_scan(sim, payload, deltas=list(range(1, 128)))
    # Valid masked ATYPs occur at rate 3/16 among the deltas; the real
    # ATYP is 0x03 so delta^0x03 must have low nibble in {1,3,4}.
    assert 0.70 < result.rst_fraction < 0.92
    assert result.infers_mask() is True


def test_atyp_scan_distinct_deltas_are_structured():
    """The non-RST deltas are exactly those flipping the masked ATYP to a
    valid type."""
    sim, payload = recorded("ssr", "aes-256-ctr", seed=1)
    result = atyp_scan(sim, payload, deltas=list(range(1, 64)))
    for delta, reaction in result.reactions_by_delta.items():
        effective = (0x03 ^ delta) & 0x0F
        if effective in (1, 3, 4):
            assert reaction != ReactionKind.RST, delta
        else:
            assert reaction == ReactionKind.RST, delta


def test_atyp_scan_rejected_for_aead():
    sim = ProberSimulator("ss-libev-3.1.3", "aes-256-gcm")
    with pytest.raises(ValueError):
        atyp_scan(sim, b"irrelevant")


def test_atyp_scan_blunted_by_replay_filter():
    """libev's Bloom filter sees the recorded IV every time: every variant
    draws the same replay reaction, and the scan learns nothing."""
    sim, payload = recorded("ss-libev-3.1.3", "aes-256-ctr", seed=2)
    result = atyp_scan(sim, payload, deltas=list(range(1, 32)))
    assert len(set(result.reactions_by_delta.values())) == 1


# -------------------------------------------------------- redirect attack


def test_redirect_attack_recovers_plaintext():
    """Peng's oracle: the attacker receives the decrypted recording."""
    sim, payload = recorded("ssr", "aes-256-ctr", seed=3)
    result = redirect_attack(sim, payload, "target.example", 80, APP)
    assert result.succeeded
    assert APP in result.recovered_plaintext
    assert b"hunter2" in result.recovered_plaintext  # the victim's cookie


def test_redirect_attack_works_with_chacha20():
    sim, payload = recorded("ss-rust-1.8.4", "chacha20-ietf", seed=4)
    result = redirect_attack(sim, payload, "target.example", 80, APP)
    assert result.succeeded


def test_redirect_attack_blocked_by_replay_filter():
    sim, payload = recorded("ss-libev-3.1.3", "aes-256-ctr", seed=5)
    result = redirect_attack(sim, payload, "target.example", 80, APP)
    assert not result.succeeded
    assert result.recovered_plaintext == b""
    assert result.reaction == ReactionKind.RST  # replay detected


def test_redirect_attack_rejected_for_cfb():
    sim, payload = recorded("ssr", "aes-256-cfb", seed=6)
    with pytest.raises(ValueError, match="CFB"):
        redirect_attack(sim, payload, "target.example", 80, APP)


def test_redirect_attack_rejected_for_aead():
    sim = ProberSimulator("outline-1.0.7", "chacha20-ietf-poly1305")
    with pytest.raises(ValueError):
        redirect_attack(sim, b"x" * 100, "target.example", 80, APP)


def test_redirect_attack_ipv4_original():
    """Equal-length rewrite: an IPv4 original spec swaps cleanly for the
    attacker's IPv4 spec, recovering exactly the application data."""
    sim = ProberSimulator("ssr", "aes-256-ctr", seed=7)
    payload = sim.record_legitimate_payload(APP, target=("198.18.0.77", 80))
    result = redirect_attack(sim, payload, "198.18.0.77", 80, APP)
    assert result.succeeded
    assert result.recovered_plaintext == APP
