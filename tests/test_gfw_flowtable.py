"""FlowTable eviction invariants: idle sweep, count cap, flag dedup."""

from repro.gfw import FlowTable
from repro.net import Flags, Segment, Simulator


def syn(i, src="192.0.2.1", dst="198.51.100.1"):
    return Segment(src_ip=src, dst_ip=dst, src_port=10000 + i, dst_port=80,
                   flags=Flags.SYN)


def data(i, payload=b"x" * 64, src="192.0.2.1", dst="198.51.100.1"):
    return Segment(src_ip=src, dst_ip=dst, src_port=10000 + i, dst_port=80,
                   flags=Flags.ACK, payload=payload)


def fin(i, src="192.0.2.1", dst="198.51.100.1"):
    return Segment(src_ip=src, dst_ip=dst, src_port=10000 + i, dst_port=80,
                   flags=Flags.FIN | Flags.ACK)


def make_table(**kwargs):
    sim = Simulator()
    return sim, FlowTable(sim, **kwargs)


def test_syn_opens_flow_and_counts():
    sim, table = make_table()
    table.track(syn(0))
    assert len(table) == 1
    assert table.opened == 1
    assert sim.bus.count("gfw.flow.opened") == 1
    assert syn(0).conn_key() in table


def test_non_syn_without_flow_is_ignored():
    sim, table = make_table()
    table.track(data(0))
    assert len(table) == 0
    assert table.opened == 0


def test_fin_and_rst_reclaim_the_flow():
    sim, table = make_table()
    table.track(syn(0))
    table.track(fin(0))
    assert len(table) == 0
    rst = syn(1).copy(flags=Flags.RST)
    table.track(syn(1))
    table.track(rst)
    assert len(table) == 0


def test_first_initiator_data_fires_once_with_key_flow_segment():
    sim, table = make_table()
    seen = []
    table.on_first_initiator_data = (
        lambda key, flow, seg: seen.append((key, flow, seg.payload)))
    table.track(syn(0))
    table.track(data(0, b"feature"))
    table.track(data(0, b"second"))
    assert [payload for _k, _f, payload in seen] == [b"feature"]
    key, flow, _payload = seen[0]
    assert key == syn(0).conn_key()
    assert flow.saw_initiator_data


def test_first_responder_data_fires_once():
    sim, table = make_table()
    responders = []
    table.on_first_responder_data = lambda flow: responders.append(
        (flow.responder_ip, flow.responder_port))
    table.track(syn(0))
    # Responder -> initiator data (reversed endpoints of the same flow).
    reply = Segment(src_ip="198.51.100.1", dst_ip="192.0.2.1", src_port=80,
                    dst_port=10000, flags=Flags.ACK, payload=b"srv")
    table.track(reply)
    table.track(reply)
    assert responders == [("198.51.100.1", 80)]


def test_idle_sweep_reclaims_only_stale_flows():
    sim, table = make_table(idle_timeout=30.0)
    table.track(syn(0))
    sim.now = 100.0
    table.track(syn(1))
    table.sweep(sim.now)
    assert len(table) == 1
    assert syn(1).conn_key() in table
    assert table.evicted == 1
    assert sim.bus.count("gfw.flow.evicted") == 1


def test_idle_sweep_amortized_over_track_calls():
    sim, table = make_table(idle_timeout=30.0)
    table.track(syn(0))
    sim.now = 1000.0
    # One shy of the sweep interval: the idle flow must still be there.
    table._track_calls = FlowTable.EVICTION_SWEEP_INTERVAL - 1
    table.track(syn(1))
    assert len(table) == 1
    assert syn(1).conn_key() in table


def test_no_idle_sweep_without_timeout():
    sim, table = make_table()          # idle_timeout=None
    table.track(syn(0))
    sim.now = 1e9
    table.sweep(sim.now)
    assert len(table) == 1
    assert table.evicted == 0


def test_count_cap_evicts_least_recently_seen_quartile():
    sim, table = make_table(max_flows=8)
    for i in range(8):
        sim.now = float(i)
        table.track(syn(i))
    assert len(table) == 8
    sim.now = 100.0
    table.track(syn(8))
    # Quartile (2 oldest) evicted before admitting the ninth flow.
    assert len(table) == 7
    assert table.evicted == 2
    assert sim.bus.count("gfw.flow.evicted") == 2
    assert syn(0).conn_key() not in table
    assert syn(1).conn_key() not in table
    assert syn(2).conn_key() in table
    assert syn(8).conn_key() in table


def test_count_cap_independent_of_idle_sweep():
    # The cap fires on admission even when no idle timeout is set, and
    # the idle sweep never runs below the timeout even at the cap.
    sim, table = make_table(max_flows=4, idle_timeout=None)
    for i in range(5):
        sim.now = float(i)
        table.track(syn(i))
    assert len(table) == 4
    assert table.evicted == 1


def test_flag_dedup_window_expires():
    sim, table = make_table(flag_dedup_window=60.0)
    key = syn(0).conn_key()
    table.note_flagged(key, now=10.0)
    assert table.recently_flagged(key, now=10.0)
    assert table.recently_flagged(key, now=70.0)      # inclusive boundary
    assert not table.recently_flagged(key, now=70.1)


def test_sweep_drops_stale_flag_records_even_without_idle_timeout():
    sim, table = make_table()          # idle_timeout=None
    key = syn(0).conn_key()
    table.note_flagged(key, now=0.0)
    table.sweep(now=1000.0)
    assert not table._flagged_recently


def test_scratchpad_lazy_and_persistent():
    sim, table = make_table()
    table.track(syn(0))
    flow = table.flows[syn(0).conn_key()]
    assert flow.scratch is None        # stateless stages never allocate
    pad = flow.scratchpad()
    pad["hits"] = 3
    assert flow.scratchpad() is pad
    assert flow.scratch == {"hits": 3}


def test_shard_validation_rejects_bad_index():
    import pytest

    sim = Simulator()
    with pytest.raises(ValueError):
        FlowTable(sim, shard=(2, 2))
    with pytest.raises(ValueError):
        FlowTable(sim, shard=(-1, 2))


def test_shard_admission_filter_partitions_new_flows():
    """A sharded table silently ignores SYNs owned by other shards."""
    from repro.runtime.sharding import flow_key, shard_of

    count = 3
    sims_tables = [make_table(shard=(index, count)) for index in range(count)]
    for i in range(60):
        for _sim, table in sims_tables:
            table.track(syn(i))
    total = 0
    for index, (sim, table) in enumerate(sims_tables):
        for key in table.flows:
            assert shard_of(flow_key(*key), count) == index
        assert table.opened == len(table)
        assert sim.bus.count("gfw.flow.opened") == table.opened
        total += len(table)
    assert total == 60                   # disjoint cover of the flow space


def test_sharded_table_equals_global_table_restricted_to_partition():
    """Shard filter == pre-filtering the segment stream (cap + LRS + sweep).

    Feeding *all* traffic through a sharded table must leave exactly the
    state of an unsharded table (same cap, same idle timeout) that only
    ever saw the shard's own segments — including which flows the count
    cap's least-recently-seen eviction reclaimed and what the idle sweep
    did.
    """
    from repro.runtime.sharding import flow_key, shard_of

    count = 2
    for index in range(count):
        sim_a, sharded = make_table(shard=(index, count), max_flows=4,
                                    idle_timeout=30.0)
        sim_b, plain = make_table(max_flows=4, idle_timeout=30.0)
        def owned(seg, index=index):
            return shard_of(flow_key(*seg.conn_key()), count) == index
        for i in range(24):
            now = float(i)
            sim_a.now = sim_b.now = now
            segments = [syn(i), data(i, b"feature")]
            if i % 3 == 0:
                segments.append(fin(i))
            for seg in segments:
                sharded.track(seg)
                if owned(seg):
                    plain.track(seg)
            if i == 12:                   # idle sweep fires on both
                sim_a.now = sim_b.now = now + 100.0
                sharded.sweep(sim_a.now)
                plain.sweep(sim_b.now)
        assert set(sharded.flows) == set(plain.flows)
        assert ({k: f.last_seen for k, f in sharded.flows.items()}
                == {k: f.last_seen for k, f in plain.flows.items()})
        assert sharded.opened == plain.opened
        assert sharded.evicted == plain.evicted
        assert (sim_a.bus.count("gfw.flow.opened")
                == sim_b.bus.count("gfw.flow.opened"))
        assert (sim_a.bus.count("gfw.flow.evicted")
                == sim_b.bus.count("gfw.flow.evicted"))
        assert plain.evicted > 0          # the cap actually fired


def test_firewall_inside_cache_cap_is_separate_hygiene():
    # The border-predicate cache cap lives on the orchestrator, not the
    # flow table: overflowing it clears the cache (a pure recompute
    # cost) without touching tracked flows.
    from repro.gfw import GreatFirewall
    from repro.net import Network

    sim = Simulator()
    net = Network(sim)
    gfw = GreatFirewall(sim, net, ["192.0.2.0/24"], inside_cache_max=4)
    gfw.flow_table.track(syn(0))
    for i in range(6):
        gfw.is_inside(f"198.51.100.{i}")
    assert sim.bus.count("gfw.cache.inside_cleared") >= 1
    assert len(gfw._inside_cache) <= 4
    assert len(gfw.flow_table) == 1
