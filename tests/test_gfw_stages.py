"""Detector stages: registry, spec round-trips, ensembles, determinism."""

import random

import pytest

from repro.gfw import DetectorConfig, PassiveDetector
from repro.gfw.stages import (
    VMESS_MIN_FIRST,
    DetectorContext,
    PassiveStage,
    build_stage,
    stage_kinds,
    training_corpus,
)


def ctx(payload, seed=0):
    return DetectorContext(payload, rng=random.Random(seed))


def corpus(n=60, seed=3):
    positives, negatives = training_corpus(seed=seed, samples=n // 2)
    return positives + negatives


# ---------------------------------------------------------------- registry


def test_registry_has_all_builtin_kinds():
    kinds = stage_kinds()
    for kind in ("passive", "entropy", "length-dist", "vmess",
                 "any", "all", "weighted"):
        assert kind in kinds


def test_build_stage_accepts_bare_kind_and_mapping():
    assert build_stage("entropy").kind == "entropy"
    assert build_stage({"kind": "entropy", "threshold": 7.5}).kind == "entropy"


def test_build_stage_rejects_bad_specs():
    with pytest.raises(KeyError):
        build_stage("no-such-detector")
    with pytest.raises(ValueError):
        build_stage({"threshold": 7.0})
    with pytest.raises(TypeError):
        build_stage(42)


def test_spec_round_trip_rebuilds_identical_stage():
    specs = [
        {"kind": "passive", "base_rate": 1.0},
        {"kind": "entropy", "threshold": 7.3, "min_length": 32},
        {"kind": "vmess", "entropy_min": 7.1},
        {"kind": "length-dist", "train_samples": 60},
        {"kind": "any", "members": ["entropy", "vmess"]},
        {"kind": "weighted", "members": ["entropy", "vmess"],
         "weights": [0.7, 0.3], "threshold": 0.4},
    ]
    for spec in specs:
        stage = build_stage(spec)
        rebuilt = build_stage(stage.spec())
        assert rebuilt.spec() == stage.spec()
        for payload in corpus(20):
            a = stage.evaluate(ctx(payload, seed=9))
            b = rebuilt.evaluate(ctx(payload, seed=9))
            assert (a.flagged, a.score, a.stage) == (b.flagged, b.score, b.stage)


# ------------------------------------------------------------ passive stage


def test_passive_stage_matches_detector_with_shared_rng():
    config = DetectorConfig(base_rate=0.7)
    stage = PassiveStage(detector=PassiveDetector(config))
    reference = PassiveDetector(config)
    rng_a, rng_b = random.Random(11), random.Random(11)
    for payload in corpus():
        result = stage.evaluate(DetectorContext(payload, rng=rng_a))
        probability = reference.flag_probability(payload)
        assert result.score == probability
        assert result.flagged == (rng_b.random() < probability)


def test_passive_stage_rejects_detector_plus_config():
    with pytest.raises(ValueError):
        PassiveStage(detector=PassiveDetector(), base_rate=1.0)


def test_rng_draw_contract():
    # Passive draws exactly one random() per evaluation; the
    # deterministic stages draw none.  This is the contract that keeps
    # default runs byte-identical and ensembles reorderable.
    draws = {
        "passive": 1,
        "entropy": 0,
        "vmess": 0,
        "length-dist": 0,
    }
    payload = corpus(4)[0]
    for kind, expected in draws.items():
        spec = ({"kind": "length-dist", "train_samples": 40}
                if kind == "length-dist" else kind)
        stage = build_stage(spec)

        class CountingRandom(random.Random):
            calls = 0

            def random(self):
                CountingRandom.calls += 1
                return super().random()

        stage.evaluate(DetectorContext(payload, rng=CountingRandom(0)))
        assert CountingRandom.calls == expected, kind


def test_ensemble_rng_consumption_outcome_independent():
    # Every member always evaluates — a flagged first member must not
    # short-circuit the passive member's RNG draw.
    spec = {"kind": "any",
            "members": [{"kind": "entropy", "threshold": 0.0},
                        {"kind": "passive", "base_rate": 1.0}]}
    stage = build_stage(spec)
    rng = random.Random(5)
    stage.evaluate(DetectorContext(b"\x00" * 200, rng=rng))
    # One draw consumed (the passive member), despite entropy flagging.
    assert rng.getstate() == _advance(random.Random(5), 1).getstate()


def _advance(rng, draws):
    for _ in range(draws):
        rng.random()
    return rng


# ---------------------------------------------------------------- ensembles


def _flag(spec, payload):
    return build_stage(spec).evaluate(ctx(payload)).flagged


def test_any_all_semantics():
    hot = {"kind": "entropy", "threshold": 0.0, "min_length": 0}
    cold = {"kind": "entropy", "threshold": 8.5}
    payload = bytes(range(256))
    assert _flag({"kind": "any", "members": [hot, cold]}, payload)
    assert not _flag({"kind": "all", "members": [hot, cold]}, payload)
    assert _flag({"kind": "all", "members": [hot, hot]}, payload)
    assert not _flag({"kind": "any", "members": [cold, cold]}, payload)


def test_weighted_combines_scores():
    # Entropy score is entropy/8; bytes(range(256)) has entropy 8.0.
    payload = bytes(range(256))
    member = {"kind": "entropy", "threshold": 0.0, "min_length": 0}
    flag_spec = {"kind": "weighted", "members": [member, member],
                 "weights": [0.5, 0.5], "threshold": 1.0}
    result = build_stage(flag_spec).evaluate(ctx(payload))
    assert result.flagged
    assert result.score == pytest.approx(1.0)
    strict = dict(flag_spec, threshold=1.01)
    assert not build_stage(strict).evaluate(ctx(payload)).flagged


def test_ensemble_validation():
    with pytest.raises(ValueError):
        build_stage({"kind": "any", "members": []})
    with pytest.raises(ValueError):
        build_stage({"kind": "weighted", "members": ["entropy", "vmess"],
                     "weights": [1.0]})


# ------------------------------------------------------------------- vmess


def test_vmess_stage_length_geometry():
    stage = build_stage("vmess")
    # Header + coalesced data: long enough for empirical entropy ~8.
    high_entropy = random.Random(1).randbytes(512)
    assert stage.evaluate(ctx(high_entropy)).flagged
    too_short = high_entropy[:VMESS_MIN_FIRST - 1]
    assert not stage.evaluate(ctx(too_short)).flagged
    low_entropy = b"A" * 200
    assert not stage.evaluate(ctx(low_entropy)).flagged
    bounded = build_stage({"kind": "vmess", "max_length": 100})
    long_payload = random.Random(2).randbytes(400)
    assert not bounded.evaluate(ctx(long_payload)).flagged


# ------------------------------------------------------------------- batch


def test_evaluate_batch_equals_sequential():
    specs = [
        {"kind": "passive", "base_rate": 0.8},
        "entropy",
        {"kind": "weighted", "members": ["entropy", "vmess",
                                         {"kind": "passive", "base_rate": 1.0}],
         "threshold": 0.6},
    ]
    payloads = corpus(40)
    for spec in specs:
        stage = build_stage(spec)
        rng_seq, rng_batch = random.Random(77), random.Random(77)
        sequential = [stage.evaluate(DetectorContext(p, rng=rng_seq))
                      for p in payloads]
        batched = stage.evaluate_batch(
            [DetectorContext(p, rng=rng_batch) for p in payloads])
        assert batched == sequential


# ----------------------------------------------------------------- context


def test_context_entropy_memoized():
    c = ctx(bytes(range(256)))
    assert c.entropy == pytest.approx(8.0)
    c.payload = b""        # mutate after the fact: cached value persists
    assert c.entropy == pytest.approx(8.0)


def test_training_corpus_deterministic():
    a = training_corpus(seed=5, samples=16)
    b = training_corpus(seed=5, samples=16)
    assert a == b
    c = training_corpus(seed=6, samples=16)
    assert a != c
