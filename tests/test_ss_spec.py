"""Target specification encoding/parsing."""

import pytest

from repro.shadowsocks import (
    ATYP_HOSTNAME,
    ATYP_IPV4,
    ATYP_IPV6,
    INVALID,
    NEED_MORE,
    encode_target,
    parse_target,
)


def test_encode_ipv4():
    assert encode_target("1.2.3.4", 80) == bytes([1, 1, 2, 3, 4, 0, 80])


def test_encode_hostname():
    enc = encode_target("example.com", 443)
    assert enc[0] == ATYP_HOSTNAME
    assert enc[1] == len("example.com")
    assert enc[2:13] == b"example.com"
    assert enc[13:] == (443).to_bytes(2, "big")


def test_encode_ipv6():
    host = "2001:0db8:0000:0000:0000:0000:0000:0001"
    enc = encode_target(host, 8080, atyp=ATYP_IPV6)
    assert enc[0] == ATYP_IPV6 and len(enc) == 19


def test_roundtrip_ipv4():
    result = parse_target(encode_target("10.20.30.40", 8388))
    assert result.ok
    assert result.spec.host == "10.20.30.40"
    assert result.spec.port == 8388
    assert result.consumed == 7


def test_roundtrip_hostname():
    result = parse_target(encode_target("gfw.report", 443))
    assert result.ok and result.spec.host == "gfw.report" and result.spec.port == 443


def test_parse_empty_needs_more():
    assert parse_target(b"").status == NEED_MORE


def test_parse_truncated_ipv4_needs_more():
    assert parse_target(bytes([1, 2, 3])).status == NEED_MORE


def test_parse_invalid_atyp():
    assert parse_target(bytes([0x07, 1, 2, 3])).status == INVALID
    assert parse_target(bytes([0x00])).status == INVALID


def test_mask_atyp_accepts_high_bits():
    # 0x11 & 0x0F == 0x01 -> parsed as IPv4 when masking.
    data = bytes([0x11, 1, 2, 3, 4, 0, 80])
    assert parse_target(data).status == INVALID
    masked = parse_target(data, mask_atyp=True)
    assert masked.ok and masked.spec.atyp == ATYP_IPV4


def test_mask_valid_fraction():
    """With masking, 3/16 of byte values parse as a valid type (§5.2.1)."""
    valid = sum(
        parse_target(bytes([b]) + b"\x05" * 20, mask_atyp=True).status != INVALID
        for b in range(256)
    )
    assert valid == 256 * 3 // 16


def test_unmasked_valid_fraction():
    valid = sum(
        parse_target(bytes([b]) + b"\x05" * 20).status != INVALID for b in range(256)
    )
    assert valid == 3


def test_hostname_zero_length_invalid():
    assert parse_target(bytes([3, 0, 0, 80])).status == INVALID


def test_hostname_short_completion():
    """A 1-byte hostname completes in well under 15 bytes (paper §5.2.1)."""
    result = parse_target(bytes([3, 1, ord("a"), 0, 80]))
    assert result.ok and result.consumed == 5


def test_port_range_validated():
    with pytest.raises(ValueError):
        encode_target("1.2.3.4", 70000)


def test_bad_hostname_length_validated():
    with pytest.raises(ValueError):
        encode_target("x" * 256, 80, atyp=ATYP_HOSTNAME)
