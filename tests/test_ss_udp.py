"""Shadowsocks UDP relay: codec, NAT associations, end-to-end exchange."""

import random

import pytest

from repro.crypto import AuthenticationError, evp_bytes_to_key, get_spec
from repro.net import Host, Network, Simulator
from repro.shadowsocks import encode_target
from repro.shadowsocks.udp import (
    UdpShadowsocksClient,
    UdpShadowsocksServer,
    decode_udp_packet,
    encode_udp_packet,
)

PASSWORD = "udp-pass"


def master(method):
    return evp_bytes_to_key(PASSWORD.encode(), get_spec(method).key_len)


@pytest.mark.parametrize("method", ["aes-256-gcm", "chacha20-ietf-poly1305",
                                    "aes-256-ctr", "chacha20"])
def test_udp_codec_roundtrip(method):
    rng = random.Random(1)
    key = master(method)
    spec_bytes = encode_target("8.8.8.8", 53)
    wire = encode_udp_packet(method, key, spec_bytes, b"dns query", rng)
    plaintext = decode_udp_packet(method, key, wire)
    assert plaintext == spec_bytes + b"dns query"


def test_udp_codec_fresh_nonce_each_packet():
    rng = random.Random(2)
    key = master("aes-256-gcm")
    spec_bytes = encode_target("8.8.8.8", 53)
    w1 = encode_udp_packet("aes-256-gcm", key, spec_bytes, b"q", rng)
    w2 = encode_udp_packet("aes-256-gcm", key, spec_bytes, b"q", rng)
    assert w1[:32] != w2[:32]  # different salts
    assert w1 != w2


def test_udp_codec_tamper_detected_aead():
    rng = random.Random(3)
    key = master("aes-128-gcm")
    wire = bytearray(encode_udp_packet("aes-128-gcm", key,
                                       encode_target("1.1.1.1", 53), b"x", rng))
    wire[-1] ^= 1
    with pytest.raises(AuthenticationError):
        decode_udp_packet("aes-128-gcm", key, bytes(wire))


def test_udp_codec_truncated_rejected():
    with pytest.raises(ValueError):
        decode_udp_packet("aes-256-gcm", master("aes-256-gcm"), b"short")


def build_world(method="aes-256-gcm"):
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, net, "198.51.100.60", "ss-server")
    client_host = Host(sim, net, "192.0.2.60", "client")
    dns_host = Host(sim, net, "198.18.0.60", "dns")
    net.register_name("resolver.example", dns_host.ip)

    dns = dns_host.udp_bind(53)

    def dns_app(dgram):
        dns.send(dgram.src_ip, dgram.src_port, b"answer:" + dgram.payload)

    dns.on_datagram = dns_app
    server = UdpShadowsocksServer(server_host, 8388, PASSWORD, method)
    client = UdpShadowsocksClient(client_host, server_host.ip, 8388,
                                  PASSWORD, method)
    return sim, net, server, client, (server_host, client_host, dns_host)


@pytest.mark.parametrize("method", ["aes-256-gcm", "chacha20-ietf-poly1305",
                                    "aes-256-ctr"])
def test_udp_relay_roundtrip(method):
    sim, net, server, client, _ = build_world(method)
    client.send("198.18.0.60", 53, b"query-1")
    sim.run(until=5)
    assert client.replies == [("198.18.0.60", 53, b"answer:query-1")]


def test_udp_relay_by_hostname():
    sim, net, server, client, _ = build_world()
    client.send("resolver.example", 53, b"query-2")
    sim.run(until=5)
    assert client.replies[0][2] == b"answer:query-2"


def test_udp_relay_reuses_association():
    sim, net, server, client, _ = build_world()
    for i in range(3):
        sim.schedule(i * 1.0, client.send, "198.18.0.60", 53,
                     b"q%d" % i)
    sim.run(until=10)
    assert len(client.replies) == 3
    assert len(server.associations) == 1  # one client -> one relay port


def test_udp_relay_separate_clients_separate_relays():
    sim, net, server, client, hosts = build_world()
    server_host, client_host, dns_host = hosts
    other_host = Host(sim, net, "192.0.2.61", "client2")
    other = UdpShadowsocksClient(other_host, server_host.ip, 8388,
                                 PASSWORD, "aes-256-gcm")
    client.send("198.18.0.60", 53, b"a")
    other.send("198.18.0.60", 53, b"b")
    sim.run(until=5)
    assert len(server.associations) == 2
    assert client.replies[0][2] == b"answer:a"
    assert other.replies[0][2] == b"answer:b"


def test_udp_relay_association_expires():
    sim, net, server, client, _ = build_world()
    client.send("198.18.0.60", 53, b"q")
    sim.run(until=5)
    assert len(server.associations) == 1
    sim.run(until=200)
    assert len(server.associations) == 0


def test_udp_garbage_silently_dropped():
    """Unlike TCP, bad UDP packets produce no observable reaction."""
    sim, net, server, client, hosts = build_world()
    server_host, client_host, _ = hosts
    raw = client_host.udp_bind()
    got = []
    raw.on_datagram = lambda dgram: got.append(dgram)
    raw.send(server_host.ip, 8388, bytes(100))  # random garbage
    sim.run(until=5)
    assert not got
    assert server.decode_failures == 1


def test_udp_wrong_password_dropped():
    sim, net, server, client, hosts = build_world()
    server_host, client_host, _ = hosts
    bad = UdpShadowsocksClient(client_host, server_host.ip, 8388,
                               "wrong", "aes-256-gcm")
    bad.send("198.18.0.60", 53, b"q")
    sim.run(until=5)
    assert not bad.replies
    assert server.decode_failures == 1


def test_udp_bind_conflicts():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "10.0.0.1")
    host.udp_bind(5000)
    with pytest.raises(ValueError):
        host.udp_bind(5000)
    host.udp_unbind(5000)
    host.udp_bind(5000)
