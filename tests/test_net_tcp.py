"""TCP model: handshake, data transfer, close semantics, windows, RST."""

import pytest

from repro.net import Flags, Host, Network, Simulator, TcpState


def make_pair():
    sim = Simulator()
    net = Network(sim)
    client = Host(sim, net, "10.0.0.1", "client")
    server = Host(sim, net, "10.0.0.2", "server")
    return sim, net, client, server


class Echo:
    """Test app: echoes received data back."""

    def __init__(self, conn):
        self.conn = conn
        conn.on_data = lambda data: conn.send(data)
        conn.on_remote_fin = conn.close


class Collector:
    def __init__(self, conn):
        self.conn = conn
        self.data = bytearray()
        self.fin = False
        self.reset = False
        conn.on_data = self.data.extend
        conn.on_remote_fin = self._fin
        conn.on_reset = self._rst

    def _fin(self):
        self.fin = True

    def _rst(self):
        self.reset = True


def test_handshake_and_echo():
    sim, net, client, server = make_pair()
    server.listen(8388, Echo)
    conn = client.connect("10.0.0.2", 8388)
    got = bytearray()
    conn.on_data = got.extend
    conn.on_connected = lambda: conn.send(b"hello world")
    sim.run()
    assert bytes(got) == b"hello world"
    assert conn.state == TcpState.ESTABLISHED


def test_send_before_established_is_buffered():
    sim, net, client, server = make_pair()
    server.listen(80, Echo)
    conn = client.connect("10.0.0.2", 80)
    got = bytearray()
    conn.on_data = got.extend
    conn.send(b"early data")  # queued while SYN in flight
    sim.run()
    assert bytes(got) == b"early data"


def test_graceful_close_fin_order():
    sim, net, client, server = make_pair()
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: (conn.send(b"bye"), conn.close())
    sim.run()
    (app,) = apps
    assert bytes(app.data) == b"bye"
    assert app.fin
    assert conn.fin_sent_first is True
    assert app.conn.fin_sent_first is False  # the client FIN'd first


def test_server_initiated_finack():
    sim, net, client, server = make_pair()

    def close_on_data(c):
        c.on_data = lambda d: c.close()

    server.listen(80, close_on_data)
    conn = client.connect("10.0.0.2", 80)
    got_fin = []
    conn.on_remote_fin = lambda: got_fin.append(True)
    conn.on_connected = lambda: conn.send(b"x")
    sim.run()
    assert got_fin == [True]


def test_abort_sends_rst():
    sim, net, client, server = make_pair()

    def abort_on_data(c):
        c.on_data = lambda d: c.abort()

    server.listen(80, abort_on_data)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"x")
    sim.run()
    assert conn.reset_received
    assert conn.state == TcpState.CLOSED


def test_closed_port_refused_with_rst():
    sim, net, client, server = make_pair()
    conn = client.connect("10.0.0.2", 9999)
    sim.run()
    assert conn.reset_received


def test_large_write_segmented_by_mss():
    sim, net, client, server = make_pair()
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    payload = bytes(5000)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(payload)
    sim.run()
    assert len(apps[0].data) == 5000
    data_segs = [r for r in server.capture.received() if r.segment.is_data]
    assert all(len(r.segment.payload) <= conn.MSS for r in data_segs)
    assert len(data_segs) >= 4


def test_small_peer_window_fragments_send():
    """A clamped receive window must fragment the first write (brdgrd)."""
    sim, net, client, server = make_pair()
    apps = []

    def small_window(c):
        c.rcv_window = 100
        apps.append(Collector(c))

    server.listen(80, small_window)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(bytes(350))
    sim.run()
    assert len(apps[0].data) == 350
    sizes = [len(r.segment.payload) for r in server.capture.received() if r.segment.is_data]
    assert sizes[0] == 100  # first segment clamped to the advertised window
    assert all(s <= 100 for s in sizes)
    assert len(sizes) >= 4


def test_sequence_numbers_byte_accurate():
    sim, net, client, server = make_pair()
    server.listen(80, Echo)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"abcdef")
    sim.run()
    data = [r.segment for r in server.capture.received() if r.segment.is_data]
    syn = [r.segment for r in server.capture.received() if r.segment.is_syn]
    assert data[0].seq == (syn[0].seq + 1) & 0xFFFFFFFF


def test_tsval_progresses_with_clock():
    sim, net, client, server = make_pair()
    server.listen(80, Echo)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"a")
    sim.schedule(5.0, conn.send, b"b")
    sim.run()
    tsvals = [r.segment.tsval for r in server.capture.received() if r.segment.is_data]
    assert len(tsvals) == 2
    # Client clock is 1000 Hz: ~5000 ticks apart.
    delta = (tsvals[1] - tsvals[0]) % (1 << 32)
    assert 4900 <= delta <= 5100


def test_ttl_decremented_by_hops():
    sim, net, client, server = make_pair()
    net.set_hops("10.0.0.1", "10.0.0.2", 18)
    server.listen(80, Echo)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"x")
    sim.run()
    seen = [r.segment.ttl for r in server.capture.received()]
    assert all(ttl == 64 - 18 for ttl in seen)


def test_custom_source_ip_requires_ownership():
    sim, net, client, server = make_pair()
    with pytest.raises(ValueError):
        client.connect("10.0.0.2", 80, src_ip="1.2.3.4")
    net.register_extra_ip(client, "1.2.3.4")
    server.listen(80, Echo)
    conn = client.connect("10.0.0.2", 80, src_ip="1.2.3.4")
    ok = []
    conn.on_connected = lambda: ok.append(True)
    sim.run()
    assert ok == [True]


def test_rst_has_no_tsval():
    """Per RFC 7323 the probers attach timestamps to every non-RST segment."""
    sim, net, client, server = make_pair()

    def abort_on_data(c):
        c.on_data = lambda d: c.abort()

    server.listen(80, abort_on_data)
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: conn.send(b"x")
    sim.run()
    rsts = [r.segment for r in client.capture.received() if r.segment.has(Flags.RST)]
    assert rsts and all(s.tsval is None for s in rsts)
