"""Related-work detectors (§8) and the evaluation helper."""

import random

import pytest

from repro.gfw.altdetectors import (
    DetectorEvaluation,
    EntropyClassifier,
    LengthDistributionClassifier,
    evaluate_detector,
)
from repro.shadowsocks import encode_target
from repro.shadowsocks.aead_session import AeadEncryptor, aead_master_key
from repro.workloads import SITES, http_get_request, site_request


def make_samples(n=150, seed=0):
    rng = random.Random(seed)
    master = aead_master_key("pw", "chacha20-ietf-poly1305")
    positives = []
    for _ in range(n):
        site = rng.choice(SITES)
        enc = AeadEncryptor("chacha20-ietf-poly1305", master, rng=rng)
        positives.append(enc.encrypt(encode_target(site, 443)
                                     + site_request(site, rng)))
    negatives = [http_get_request(rng.choice(SITES), rng) for _ in range(n)]
    return positives, negatives


def test_entropy_classifier_separates_encrypted_from_http():
    positives, negatives = make_samples()
    clf = EntropyClassifier().fit(positives[:100], negatives[:100])
    ev = evaluate_detector(clf.flag, positives[100:], negatives[100:])
    assert ev.recall > 0.9
    assert ev.false_positive_rate < 0.1
    # HTTP tops out around 5.5 bits/byte; encrypted payloads are ~7.9.
    assert 5.4 <= clf.threshold < 8.0


def test_entropy_classifier_short_payloads_not_flagged():
    clf = EntropyClassifier(threshold=1.0)
    assert not clf.flag(b"\x01\x02")


def test_entropy_classifier_fit_validates():
    with pytest.raises(ValueError):
        EntropyClassifier().fit([], [b"x" * 100])


def test_entropy_classifier_fit_grid_includes_8_bits():
    # Regression: the fit grid used to stop at 7.9, so a corpus whose
    # negatives sit in [7.9, 8.0) could never be separated from exact
    # 8.0-entropy positives.  The 8.0 threshold must be selectable.
    from repro.gfw.entropy import shannon_entropy

    positives = [bytes(range(256)) * 4] * 20             # entropy exactly 8.0
    # 255 equiprobable symbols: entropy = log2(255) ~ 7.994, in [7.9, 8.0).
    negatives = [bytes(range(255)) * 4] * 20
    assert shannon_entropy(positives[0]) == 8.0
    assert 7.9 <= shannon_entropy(negatives[0]) < 8.0
    clf = EntropyClassifier().fit(positives, negatives)
    assert clf.threshold == 8.0
    ev = evaluate_detector(clf.flag, positives, negatives)
    assert ev.recall == 1.0
    assert ev.false_positive_rate == 0.0


def test_length_classifier_learns_histograms():
    rng = random.Random(1)
    # Positives cluster at 400-500 bytes; negatives at 100-200.
    positives = [bytes(rng.randint(400, 500)) for _ in range(200)]
    negatives = [bytes(rng.randint(100, 200)) for _ in range(200)]
    clf = LengthDistributionClassifier().fit(positives, negatives)
    ev = evaluate_detector(clf.flag, positives, negatives)
    assert ev.recall > 0.95
    assert ev.false_positive_rate < 0.05


def test_length_classifier_likelihood_ratio_monotone():
    rng = random.Random(2)
    positives = [bytes(450)] * 50
    negatives = [bytes(150)] * 50
    clf = LengthDistributionClassifier().fit(positives, negatives)
    assert clf.likelihood_ratio(bytes(450)) > clf.likelihood_ratio(bytes(150))


def test_length_classifier_requires_fit():
    with pytest.raises(RuntimeError):
        LengthDistributionClassifier().flag(b"x")
    with pytest.raises(ValueError):
        LengthDistributionClassifier(bin_width=0)
    with pytest.raises(ValueError):
        LengthDistributionClassifier().fit([], [b"x"])


def test_evaluation_metrics():
    ev = DetectorEvaluation(true_positives=8, false_positives=2,
                            false_negatives=2, true_negatives=8)
    assert ev.precision == 0.8
    assert ev.recall == 0.8
    assert ev.false_positive_rate == 0.2
    assert ev.f1 == pytest.approx(0.8)
    empty = DetectorEvaluation(0, 0, 0, 0)
    assert empty.precision == 0.0 and empty.f1 == 0.0
