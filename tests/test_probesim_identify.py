"""§5.2.2: inferring implementation facts from reaction statistics."""

import pytest

from repro.probesim import (
    PROBE_LENGTH_SCHEDULE,
    build_random_probe_row,
    identify_server,
)


def fingerprint(profile, method, trials=10, seed=0):
    row = build_random_probe_row(profile, method, PROBE_LENGTH_SCHEDULE,
                                 trials=trials, seed=seed)
    return identify_server(row)


def test_identifies_aead_salt_length_old_libev():
    ident = fingerprint("ss-libev-3.1.3", "aes-128-gcm", trials=3)
    assert ident.construction == "aead"
    assert ident.nonce_len == 16
    assert ident.error_action == "rst"


def test_identifies_aead_salt24_hints_cipher():
    ident = fingerprint("ss-libev-3.0.8", "aes-192-gcm", trials=3)
    assert ident.nonce_len == 24
    assert ident.cipher_hint == "aes-192-gcm"


def test_identifies_stream_iv8():
    ident = fingerprint("ss-libev-3.2.5", "chacha20", trials=12)
    assert ident.construction == "stream"
    assert ident.nonce_len == 8
    assert ident.masks_atyp is True


def test_identifies_chacha20_ietf_from_iv12():
    ident = fingerprint("ss-libev-3.1.3", "chacha20-ietf", trials=12)
    assert ident.nonce_len == 12
    assert ident.cipher_hint == "chacha20-ietf"


def test_identifies_outline_106_quirk():
    ident = fingerprint("outline-1.0.6", "chacha20-ietf-poly1305", trials=3)
    assert ident.quirk_finack_at_header
    assert ident.compatible_profiles == ["outline-1.0.6"]


def test_new_implementations_yield_timeout_only():
    ident = fingerprint("outline-1.0.7", "chacha20-ietf-poly1305", trials=3)
    assert ident.error_action == "timeout"
    # Cannot pin the implementation: all post-fix AEAD servers look alike.
    assert "outline-1.0.7" in ident.compatible_profiles
    assert "ss-libev-3.3.1" in ident.compatible_profiles


def test_new_stream_still_identifiable_via_finack():
    """Even timeout-style servers leak the stream construction through
    FIN/ACKs on garbage target specs."""
    ident = fingerprint("ss-libev-3.3.1", "chacha20", trials=25, seed=5)
    assert ident.error_action == "timeout"
    assert ident.construction == "stream"


def test_compatible_profiles_include_truth():
    cases = [
        ("ss-libev-3.1.3", "aes-256-ctr", 12),
        ("ss-libev-3.3.3", "aes-256-gcm", 3),
        ("outline-1.0.6", "chacha20-ietf-poly1305", 3),
    ]
    for profile, method, trials in cases:
        ident = fingerprint(profile, method, trials=trials)
        assert profile in ident.compatible_profiles, (profile, ident)
