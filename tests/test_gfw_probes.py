"""Probe forging (§3.2) and the delay model (Figure 7)."""

import random

import pytest

from repro.gfw import (
    FIG7_ANCHORS,
    NR1_LENGTHS,
    NR2_LENGTH,
    ProbeForge,
    ProbeType,
    ReplayDelayModel,
)


@pytest.fixture
def forge():
    return ProbeForge(random.Random(42))


PAYLOAD = bytes(range(200))


def test_r1_identical(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R1)
    assert probe.payload == PAYLOAD
    assert probe.is_replay


def test_r2_changes_byte_zero_only(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R2)
    assert probe.payload[0] != PAYLOAD[0]
    assert probe.payload[1:] == PAYLOAD[1:]
    assert probe.mutated_offsets == (0,)


def test_r3_changes_bytes_0_7_and_62_63(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R3)
    changed = {i for i in range(len(PAYLOAD)) if probe.payload[i] != PAYLOAD[i]}
    assert changed == set(range(8)) | {62, 63}


def test_r4_changes_byte_16(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R4)
    changed = {i for i in range(len(PAYLOAD)) if probe.payload[i] != PAYLOAD[i]}
    assert changed == {16}


def test_r5_changes_bytes_6_and_16(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R5)
    changed = {i for i in range(len(PAYLOAD)) if probe.payload[i] != PAYLOAD[i]}
    assert changed == {6, 16}


def test_r6_changes_bytes_16_to_32(forge):
    probe = forge.replay(PAYLOAD, ProbeType.R6)
    changed = {i for i in range(len(PAYLOAD)) if probe.payload[i] != PAYLOAD[i]}
    assert changed == set(range(16, 33))


def test_mutation_skips_offsets_beyond_payload(forge):
    short = bytes(range(10))
    probe = forge.replay(short, ProbeType.R3)
    # Offsets 62-63 do not exist; only 0-7 changed.
    assert probe.mutated_offsets == tuple(range(8))
    assert len(probe.payload) == 10


def test_nr1_lengths_are_trios():
    assert NR1_LENGTHS == tuple(sorted(
        n + d for n in (8, 12, 16, 22, 33, 41, 49) for d in (-1, 0, 1)
    ))


def test_nr1_default_sampling(forge):
    for _ in range(50):
        assert len(forge.nr1().payload) in NR1_LENGTHS


def test_nr1_invalid_length_rejected(forge):
    with pytest.raises(ValueError):
        forge.nr1(100)


def test_nr2_is_221_bytes(forge):
    assert len(forge.nr2().payload) == NR2_LENGTH == 221
    assert forge.nr2().probe_type == ProbeType.NR2


def test_battery_covers_all_nr1_lengths(forge):
    battery = forge.random_probe_battery()
    lengths = sorted(len(p.payload) for p in battery if p.probe_type == ProbeType.NR1)
    assert tuple(lengths) == NR1_LENGTHS
    assert battery[-1].probe_type == ProbeType.NR2


def test_replay_type_validation(forge):
    with pytest.raises(ValueError):
        forge.replay(PAYLOAD, ProbeType.NR1)


# ----------------------------------------------------------- delay model


def test_delay_model_bounds():
    model = ReplayDelayModel()
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(5000)]
    assert min(samples) >= 0.28
    assert max(samples) <= 569.55 * 3600 + 1


def test_delay_model_matches_anchor_quantiles():
    model = ReplayDelayModel()
    rng = random.Random(2)
    samples = sorted(model.sample(rng) for _ in range(20000))

    def empirical_cdf(x):
        import bisect

        return bisect.bisect_right(samples, x) / len(samples)

    assert empirical_cdf(1.0) == pytest.approx(0.22, abs=0.02)
    assert empirical_cdf(60.0) == pytest.approx(0.52, abs=0.02)
    assert empirical_cdf(900.0) == pytest.approx(0.77, abs=0.02)


def test_delay_model_cdf_inverse_consistency():
    model = ReplayDelayModel()
    for u, d in FIG7_ANCHORS[1:-1]:
        assert model.cdf(d) == pytest.approx(u, abs=1e-9)


def test_delay_model_rejects_bad_anchors():
    with pytest.raises(ValueError):
        ReplayDelayModel([(0.0, 1.0), (0.5, 0.5)])
