"""The JobSpec/JobResult layer shared by the CLI and the service."""

from dataclasses import dataclass

import pytest

from repro.runtime import (
    JobSpec,
    JobSpecError,
    ResultCache,
    execute_job,
    run_sweep,
)
from repro.runtime.scenario import Scenario, register, unregister


@dataclass
class _JobParams:
    seed: int = 0
    value: int = 3


@pytest.fixture
def job_scenario():
    register(Scenario(
        name="_toy-job",
        title="toy",
        params_type=_JobParams,
        build=lambda params: {"tripled": params.value * 3,
                              "seed": params.seed},
        summarize=lambda artifact: artifact,
        events_of=lambda artifact: {"counters": {"toy.built": 1}},
    ))
    yield "_toy-job"
    unregister("_toy-job")


# ------------------------------------------------------------- from_dict


def test_from_dict_seed_count_form():
    spec = JobSpec.from_dict({"scenario": "s", "seeds": 3, "seed_start": 5})
    assert spec.seeds == (5, 6, 7)
    assert spec.overrides == {}
    assert spec.shards is None and spec.jobs == 1 and spec.use_cache


def test_from_dict_seed_list_form():
    spec = JobSpec.from_dict({"scenario": "s", "seeds": [9, 2, 4]})
    assert spec.seeds == (9, 2, 4)


def test_from_dict_defaults_to_single_seed():
    assert JobSpec.from_dict({"scenario": "s"}).seeds == (0,)


@pytest.mark.parametrize("bad", [
    {},                                              # no scenario
    {"scenario": ""},                                # empty scenario
    {"scenario": 3},                                 # non-string scenario
    {"scenario": "s", "seeds": 0},                   # zero-count sweep
    {"scenario": "s", "seeds": True},                # bool is not a count
    {"scenario": "s", "seeds": ["x"]},               # non-int seed
    {"scenario": "s", "seeds": "3"},                 # stringly-typed count
    {"scenario": "s", "overrides": [1]},             # non-object overrides
    {"scenario": "s", "shards": 0},                  # shards below 1
    {"scenario": "s", "shards": "auto"},             # service takes ints only
    {"scenario": "s", "jobs": 0},                    # jobs below 1
    {"scenario": "s", "jobs": True},                 # bool is not a count
    {"scenario": "s", "sedes": 3},                   # typo'd key
])
def test_from_dict_rejects_malformed_specs(bad):
    with pytest.raises(JobSpecError):
        JobSpec.from_dict(bad)


def test_spec_round_trips_through_to_dict():
    spec = JobSpec(scenario="s", seeds=(1, 2), overrides={"value": 9},
                   shards=4, jobs=2, use_cache=False)
    assert JobSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------- execute_job


def test_execute_job_matches_run_sweep(job_scenario):
    spec = JobSpec(scenario=job_scenario, seeds=(0, 1),
                   overrides={"value": 5}, use_cache=False)
    job = execute_job(spec)
    sweep = run_sweep(job_scenario, seeds=(0, 1), overrides={"value": 5},
                      use_cache=False)
    assert job.canonical_bytes() == sweep.canonical_bytes()
    doc = job.merged
    assert doc["seeds"] == [0, 1]
    assert doc["runs"][0]["payload"]["tripled"] == 15


def test_execute_job_counts_cache_traffic(tmp_path, job_scenario):
    cache = ResultCache(tmp_path)
    spec = JobSpec(scenario=job_scenario, seeds=(0,))
    first = execute_job(spec, cache=cache)
    second = execute_job(spec, cache=cache)
    assert (first.cache_hits, first.cache_misses) == (0, 1)
    assert (second.cache_hits, second.cache_misses) == (1, 0)
    assert second.canonical_bytes() == first.canonical_bytes()


def test_job_result_round_trips_through_json(job_scenario):
    from repro.runtime.runner import JobResult

    spec = JobSpec(scenario=job_scenario, use_cache=False)
    job = execute_job(spec)
    clone = JobResult.from_json_dict(job.to_json_dict())
    assert clone.canonical_bytes() == job.canonical_bytes()
    assert clone.spec == spec.to_dict()
