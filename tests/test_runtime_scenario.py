"""Scenario registry, params canonicalization, override coercion."""

from dataclasses import dataclass
from typing import Tuple

import pytest

from repro.runtime import canonical_params, get_scenario, scenario_names
from repro.runtime.scenario import (
    RunResult,
    Scenario,
    coerce_overrides,
    register,
    unregister,
)


@dataclass
class _Params:
    seed: int = 0
    count: int = 10
    label: str = "x"
    windows: Tuple[Tuple[float, float], ...] = ((1.0, 2.0),)


def test_builtin_scenarios_are_registered():
    names = scenario_names()
    for expected in ("shadowsocks", "sink", "brdgrd", "blocking",
                     "probesim-grid", "probesim-replay",
                     "ablation-detector-features", "ablation-defense-matrix"):
        assert expected in names


def test_get_unknown_scenario_lists_known():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("no-such-scenario")


def test_register_duplicate_rejected():
    scenario = Scenario(name="_dup", title="t", params_type=_Params,
                        build=lambda p: {}, summarize=lambda a: a)
    register(scenario)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register(scenario)
        register(scenario, replace=True)  # explicit replace is fine
    finally:
        unregister("_dup")


def test_canonical_params_excludes_seed_and_sorts():
    params = _Params(seed=99, count=5)
    canon = canonical_params(params)
    assert "seed" not in canon
    assert list(canon) == sorted(canon)
    assert canon["count"] == 5
    assert canon["windows"] == [[1.0, 2.0]]  # tuples flattened to JSON lists


def test_instantiate_injects_seed():
    scenario = Scenario(name="_inst", title="t", params_type=_Params,
                        build=lambda p: {}, summarize=lambda a: a)
    params = scenario.instantiate(42, {"count": 3})
    assert params.seed == 42 and params.count == 3


def test_coerce_overrides_parses_cli_strings():
    out = coerce_overrides(_Params, {"count": "25", "label": "plain",
                                     "windows": "[[0, 5], [10, 15]]"})
    assert out["count"] == 25
    assert out["label"] == "plain"
    assert out["windows"] == ((0, 5), (10, 15))  # nested tuple for tuple field


def test_coerce_overrides_passes_values_through():
    out = coerce_overrides(_Params, {"count": 7, "windows": [[1, 2]]})
    assert out["count"] == 7
    assert out["windows"] == ((1, 2),)


def test_coerce_overrides_unknown_key():
    with pytest.raises(KeyError, match="no parameter 'nope'"):
        coerce_overrides(_Params, {"nope": 1})


def test_runresult_roundtrip_and_identity():
    result = RunResult(scenario="s", params={"a": 1}, seed=3,
                       payload={"x": 2.5}, events={"counters": {"e": 1}},
                       wall_time=1.25, fingerprint="abcd")
    clone = RunResult.from_json_dict(result.to_json_dict())
    assert clone == result
    assert result.identity() == {
        "scenario": "s", "params": {"a": 1}, "seed": 3,
        "payload": {"x": 2.5}, "events": {"counters": {"e": 1}},
        "analysis": {},
    }
    # Timing/provenance never leak into the deterministic identity.
    slower = RunResult(scenario="s", params={"a": 1}, seed=3,
                       payload={"x": 2.5}, events={"counters": {"e": 1}},
                       wall_time=9.0, fingerprint="ffff", cache_hit=True)
    assert slower.canonical_bytes() == result.canonical_bytes()
