"""End-to-end tunnel: client -> Shadowsocks server -> target, and back."""

import pytest

from repro.net import Host, Network, Simulator
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer


class WebApp:
    """Minimal HTTP-ish responder used as the tunnel target."""

    def __init__(self, conn):
        conn.on_data = lambda data: conn.send(b"HTTP/1.1 200 OK\r\n\r\nhello from target")


def build_world(method, profile, merge_header=True, password="pw123"):
    sim = Simulator()
    net = Network(sim)
    client_host = Host(sim, net, "192.0.2.10", "client")
    server_host = Host(sim, net, "198.51.100.5", "ss-server")
    target_host = Host(sim, net, "203.0.113.80", "web")
    target_host.listen(80, WebApp)
    net.register_name("example.com", "203.0.113.80")
    server = ShadowsocksServer(server_host, 8388, password, method, profile)
    client = ShadowsocksClient(
        client_host, "198.51.100.5", 8388, password, method, merge_header=merge_header
    )
    return sim, net, client, server, (client_host, server_host, target_host)


@pytest.mark.parametrize("method,profile", [
    ("aes-256-cfb", "ss-libev-3.1.3"),
    ("aes-128-ctr", "ss-libev-3.3.1"),
    ("chacha20", "ss-libev-3.2.5"),
    ("chacha20-ietf", "ss-libev-3.3.3"),
    ("rc4-md5", "ss-python"),
    ("aes-128-gcm", "ss-libev-3.0.8"),
    ("aes-256-gcm", "ss-libev-3.3.1"),
    ("chacha20-ietf-poly1305", "outline-1.0.7"),
    ("chacha20-ietf-poly1305", "outline-1.1.0"),
])
def test_roundtrip_by_ip(method, profile):
    sim, net, client, server, _ = build_world(method, profile)
    session = client.open("203.0.113.80", 80, b"GET / HTTP/1.1\r\n\r\n")
    sim.run(until=30)
    assert bytes(session.reply) == b"HTTP/1.1 200 OK\r\n\r\nhello from target"


def test_roundtrip_by_hostname():
    sim, net, client, server, _ = build_world("aes-256-gcm", "ss-libev-3.3.1")
    session = client.open("example.com", 80, b"GET /")
    sim.run(until=30)
    assert b"hello from target" in bytes(session.reply)


def test_unresolvable_hostname_gets_finack():
    sim, net, client, server, _ = build_world("aes-256-gcm", "ss-libev-3.3.1")
    session = client.open("no-such-host.invalid", 80, b"GET /")
    sim.run(until=30)
    assert session.closed and not session.reset
    assert session.reply == bytearray()


def test_unreachable_ip_gets_finack():
    sim, net, client, server, _ = build_world("aes-128-gcm", "ss-libev-3.1.3")
    session = client.open("203.0.113.99", 80, b"GET /")  # no such host attached
    sim.run(until=30)
    assert session.closed and not session.reset


def test_multiple_sequential_connections():
    sim, net, client, server, _ = build_world("chacha20-ietf-poly1305", "outline-1.0.8")
    sessions = []

    def open_one(i):
        sessions.append(client.open("203.0.113.80", 80, b"GET /%d" % i))

    for i in range(5):
        sim.schedule(i * 2.0, open_one, i)
    sim.run(until=60)
    assert len(sessions) == 5
    for s in sessions:
        assert b"hello from target" in bytes(s.reply)


def test_bidirectional_streaming():
    sim, net, client, server, hosts = build_world("aes-256-gcm", "ss-libev-3.3.1")
    _, _, target_host = hosts

    # Replace the simple responder with an echo, exercising multiple chunks
    # in both directions.
    target_host.unlisten(80)

    def echo(conn):
        conn.on_data = lambda data: conn.send(data)

    target_host.listen(80, echo)
    session = client.open("203.0.113.80", 80, b"chunk-0 ")
    sim.schedule(1.0, session.send, b"chunk-1 ")
    sim.schedule(2.0, session.send, b"chunk-2")
    sim.run(until=30)
    assert bytes(session.reply) == b"chunk-0 chunk-1 chunk-2"


def test_unmerged_header_first_packet_constant_size():
    """Outline-style clients send a constant-size first packet (§11)."""
    sizes = []
    for payload in (b"a" * 10, b"b" * 400):
        sim, net, client, server, hosts = build_world(
            "chacha20-ietf-poly1305", "outline-1.0.7", merge_header=False
        )
        client_host = hosts[0]
        client.open("203.0.113.80", 80, payload)
        sim.run(until=5)
        first = [
            r.segment for r in client_host.capture.sent() if r.segment.is_data
        ][0]
        sizes.append(len(first.payload))
    assert sizes[0] == sizes[1]  # header-only first packet: constant


def test_merged_header_first_packet_varies():
    sizes = []
    for payload in (b"a" * 10, b"b" * 400):
        sim, net, client, server, hosts = build_world(
            "chacha20-ietf-poly1305", "outline-1.0.7", merge_header=True
        )
        client_host = hosts[0]
        client.open("203.0.113.80", 80, payload)
        sim.run(until=5)
        first = [r.segment for r in client_host.capture.sent() if r.segment.is_data][0]
        sizes.append(len(first.payload))
    assert sizes[1] - sizes[0] == 390


def test_wrong_password_rejected():
    sim, net, client, server, _ = build_world("aes-256-gcm", "ss-libev-3.0.8")
    bad_client = ShadowsocksClient(
        Host(sim, net, "192.0.2.11", "intruder"),
        "198.51.100.5", 8388, "not-the-password", "aes-256-gcm",
    )
    session = bad_client.open("203.0.113.80", 80, b"GET /")
    sim.run(until=30)
    # Old libev resets on authentication failure.
    assert session.reset
    assert session.reply == bytearray()
