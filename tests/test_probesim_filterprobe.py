"""§5.3: detecting a replay filter with duplicate probes."""

import pytest

from repro.gfw import ProbeType, SchedulerConfig
from repro.probesim import ProberSimulator, detect_replay_filter


def test_detects_filter_on_old_libev():
    sim = ProberSimulator("ss-libev-3.1.3", "aes-256-ctr", seed=11)
    result = detect_replay_filter(sim)
    assert result.filter_detected is True
    assert result.first_reaction == "FIN/ACK"
    assert result.second_reaction != "FIN/ACK"


def test_detects_filter_on_new_libev():
    sim = ProberSimulator("ss-libev-3.3.1", "chacha20", seed=12)
    result = detect_replay_filter(sim)
    assert result.filter_detected is True


def test_no_filter_on_ssr():
    sim = ProberSimulator("ssr", "aes-256-ctr", seed=13)
    result = detect_replay_filter(sim)
    assert result.filter_detected is False
    assert result.second_reaction == "FIN/ACK"


def test_inconclusive_when_no_finack_found():
    # An AEAD-only server never FIN/ACKs random probes of length 33.
    sim = ProberSimulator("outline-1.0.7", "chacha20-ietf-poly1305", seed=14)
    result = detect_replay_filter(sim, max_attempts=5)
    assert result.filter_detected is None
    assert result.attempts == 5


def test_scheduler_duplicates_some_nr2(monkeypatch):
    """~10% of NR2 probes repeat with the identical payload (§5.3)."""
    import random

    from repro.gfw import ProbeForge, ProbeScheduler, ProberFleet, ProberRunner
    from repro.net import Host, Network, Simulator

    sim = Simulator()
    net = Network(sim)
    fleet_host = Host(sim, net, "100.64.0.1", "fleet")
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, lambda c: None)
    fleet = ProberFleet(fleet_host, rng=random.Random(1))
    runner = ProberRunner(fleet, rng=random.Random(2))
    scheduler = ProbeScheduler(
        runner, rng=random.Random(3),
        config=SchedulerConfig(nr2_probability=1.0, r2_probability=0.0,
                               repeat_geometric_p=0.0),
    )
    for _ in range(300):
        scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(200))
    sim.run(until=700 * 3600)
    nr2 = [r for r in runner.log if r.probe_type == ProbeType.NR2]
    payload_counts = {}
    for r in nr2:
        payload_counts[r.probe.payload] = payload_counts.get(r.probe.payload, 0) + 1
    repeated = sum(1 for c in payload_counts.values() if c > 1)
    assert 0.04 < repeated / len(payload_counts) < 0.20
