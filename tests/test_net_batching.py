"""Batched datapath plumbing and drop-accounting regressions."""

import pytest

from repro.net import Flags, Host, Network, Segment, Simulator
from repro.net.datagram import Datagram
from repro.net.network import Middlebox
from repro.net.packet import SegmentBurst


def make_net():
    sim = Simulator()
    net = Network(sim)
    return sim, net


def seg(payload=b"", flags=Flags.RST, src="10.0.0.1", dst="10.0.0.2",
        sport=1, dport=80, **kw):
    return Segment(src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
                   flags=flags, payload=payload, **kw)


class FanOut(Middlebox):
    """Duplicates every segment (a degenerate packet copier)."""

    def process(self, s, network):
        return [s, s.copy()]


class DropPayloads(Middlebox):
    """Drops data segments, forwards bare control segments."""

    def __init__(self):
        self.dropped = 0

    def process(self, s, network):
        if s.payload:
            self.dropped += 1
            return []
        return [s]


# --------------------------------------------- regression: drop accounting


def test_partial_drop_during_fanout_is_counted():
    # A middlebox dropping some (not all) of a fanned-out round used to
    # go completely uncounted.
    sim, net = make_net()
    net.add_middlebox(FanOut())
    net.add_middlebox(DropPayloads())
    Host(sim, net, "10.0.0.2", "b")
    net.send_segment(seg(payload=b"x", flags=Flags.PSH | Flags.ACK))
    assert net.segments_dropped == 2      # both fanned-out copies
    net.send_segment(seg())               # control segment passes twice
    assert net.segments_dropped == 2
    sim.run()
    assert net.segments_delivered == 2


def test_full_batch_drop_counts_every_segment():
    # A full drop of a fanned-out round used to count as one segment.
    sim, net = make_net()
    fan = FanOut()
    net.add_middlebox(fan)
    net.add_middlebox(fan)                # 1 -> 2 -> 4 copies
    net.add_middlebox(DropPayloads())
    net.send_segment(seg(payload=b"x", flags=Flags.PSH | Flags.ACK))
    assert net.segments_dropped == 4


def test_burst_drop_counts_every_dropped_segment():
    sim, net = make_net()
    net.add_middlebox(DropPayloads())
    Host(sim, net, "10.0.0.2", "b")
    burst = SegmentBurst([
        seg(payload=b"x", flags=Flags.PSH | Flags.ACK),
        seg(),
        seg(payload=b"y", flags=Flags.PSH | Flags.ACK),
    ])
    net.send_segment_burst(burst)
    assert net.segments_dropped == 2
    sim.run()
    assert net.segments_delivered == 1


def test_udp_drops_have_their_own_counter():
    # Datagram drops used to be folded into segments_dropped.
    sim, net = make_net()

    class DropAllDatagrams(Middlebox):
        def process_datagram(self, dgram, network):
            return []

    net.add_middlebox(DropAllDatagrams())
    host = Host(sim, net, "10.0.0.1", "a")
    endpoint = host.udp_bind(4000)
    endpoint.send("10.0.0.2", 53, b"query")
    assert net.datagrams_dropped == 1
    assert net.segments_dropped == 0


def test_udp_unknown_host_counts_datagram_drop():
    sim, net = make_net()
    host = Host(sim, net, "10.0.0.1", "a")
    host.udp_bind(4000).send("10.9.9.9", 53, b"query")
    sim.run()
    assert net.datagrams_dropped == 1
    assert net.segments_dropped == 0
    assert net.datagrams_delivered == 0


def test_udp_delivery_counts_datagrams_not_segments():
    sim, net = make_net()
    a = Host(sim, net, "10.0.0.1", "a")
    b = Host(sim, net, "10.0.0.2", "b")
    got = []
    b_ep = b.udp_bind(53)
    b_ep.on_datagram = got.append
    a.udp_bind(4000).send("10.0.0.2", 53, b"query")
    sim.run()
    assert [d.payload for d in got] == [b"query"]
    assert net.datagrams_delivered == 1
    assert net.segments_delivered == 0


# ------------------------------------------------------------ Datagram.copy


def test_datagram_copy_is_equal_but_distinct():
    d = Datagram(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1,
                 dst_port=2, payload=b"p", ttl=64)
    clone = d.copy()
    assert clone == d and clone is not d
    changed = d.copy(ttl=10, timestamp=4.5)
    assert changed.ttl == 10 and changed.timestamp == 4.5
    assert d.ttl == 64
    with pytest.raises(TypeError):
        d.copy(nonsense=1)


def test_segment_copy_rejects_unknown_fields():
    s = seg()
    with pytest.raises(TypeError):
        s.copy(not_a_field=1)


def test_segment_copy_matches_dataclasses_replace():
    import dataclasses

    s = seg(payload=b"abc", seq=7, ack=9, ttl=60, ip_id=5, tsval=1, tsecr=2,
            timestamp=3.25)
    assert s.copy() == dataclasses.replace(s)
    assert s.copy(ttl=12) == dataclasses.replace(s, ttl=12)
    assert s.copy().timestamp == s.timestamp


# ------------------------------------------------------------ burst basics


def test_burst_requires_segments_and_exposes_soa_views():
    with pytest.raises(ValueError):
        SegmentBurst([])
    members = [seg(payload=b"aa", flags=Flags.PSH | Flags.ACK, seq=10),
               seg(payload=b"bbb", flags=Flags.PSH | Flags.ACK, seq=12)]
    burst = SegmentBurst(members)
    assert burst.flow() == ("10.0.0.1", 1, "10.0.0.2", 80)
    assert burst.seqs() == [10, 12]
    assert burst.lengths() == [2, 3]
    assert burst.flag_words() == [Flags.PSH | Flags.ACK] * 2
    assert burst.payloads() == [b"aa", b"bbb"]
    assert len(burst) == 2 and list(burst) == members and burst[1] is members[1]


def test_burst_delivery_matches_per_segment_counters():
    sim, net = make_net()
    received = []
    b = Host(sim, net, "10.0.0.2", "b")
    b.deliver = received.append
    net.send_segment_burst(SegmentBurst(
        [seg(seq=i) for i in range(5)]))
    sim.run()
    assert [s.seq for s in received] == list(range(5))
    assert net.segments_delivered == 5
    # One weighted event carried the whole burst.
    assert sim.bus.count("sim.events") == 5
    assert sim.processed == 1


def test_default_middlebox_burst_falls_back_to_per_segment_process():
    sim, net = make_net()
    seen = []

    class Recorder(Middlebox):
        def process(self, s, network):
            seen.append(s.seq)
            return [s]

    net.add_middlebox(Recorder())
    Host(sim, net, "10.0.0.2", "b")
    net.send_segment_burst(SegmentBurst([seg(seq=i) for i in range(3)]))
    assert seen == [0, 1, 2]


def test_host_tx_batch_groups_consecutive_same_flow_runs():
    sim, net = make_net()
    a = Host(sim, net, "10.0.0.1", "a")
    Host(sim, net, "10.0.0.2", "b")
    Host(sim, net, "10.0.0.3", "c")
    a.begin_tx_batch()
    a.transmit(seg(seq=1))
    a.transmit(seg(seq=2))
    a.transmit(seg(seq=3, dst="10.0.0.3"))
    a.transmit(seg(seq=4))
    assert sim.pending == 0            # everything buffered
    a.end_tx_batch()
    # Three delivery events: burst [1,2], single [3], single [4] — the
    # global emission order is never reordered across flows.
    assert sim.pending == 3
    sim.run()
    assert net.segments_delivered == 4
    assert sim.bus.count("sim.events") == 4


def test_tx_batching_can_be_disabled(monkeypatch):
    monkeypatch.setattr(Host, "tx_batching", False)
    sim, net = make_net()
    a = Host(sim, net, "10.0.0.1", "a")
    Host(sim, net, "10.0.0.2", "b")
    a.begin_tx_batch()
    a.transmit(seg(seq=1))
    a.transmit(seg(seq=2))
    assert sim.pending == 2            # sent immediately, one event each
    a.end_tx_batch()
    sim.run()
    assert net.segments_delivered == 2


# ------------------------- regression: deliver_burst override contract
#
# deliver_burst promises that overridden delivery hooks observe every
# arrival; the batched receive fast path may only engage when the hooks
# are stock (batched_rx_ok auto-detection) or the subclass explicitly
# opts in.


def _burst(n=4):
    return SegmentBurst([seg(seq=i, flags=Flags.RST) for i in range(n)])


def test_instance_deliver_override_sees_every_burst_member():
    # An instance-level monkeypatch (test double, capture tap) must
    # force the dynamic per-segment path even though the *class* hooks
    # are stock.
    sim, net = make_net()
    b = Host(sim, net, "10.0.0.2", "b")
    assert b.batched_rx_ok            # stock host auto-detects True
    received = []
    b.deliver = received.append
    b.deliver_burst(_burst())
    assert [s.seq for s in received] == [0, 1, 2, 3]


def test_instance_deliver_one_override_sees_every_burst_member():
    sim, net = make_net()
    b = Host(sim, net, "10.0.0.2", "b")
    received = []
    b._deliver_one = received.append
    b.deliver_burst(_burst())
    assert [s.seq for s in received] == [0, 1, 2, 3]


def test_subclass_deliver_override_disables_batched_rx():
    sim, net = make_net()
    received = []

    class Tap(Host):
        def deliver(self, s):
            received.append(s.seq)
            super().deliver(s)

    b = Tap(sim, net, "10.0.0.2", "b")
    # Auto-detection: overridden hooks mean no batched receive.
    assert b.batched_rx_ok is False
    b.deliver_burst(_burst())
    assert received == [0, 1, 2, 3]


def test_subclass_can_opt_back_into_batched_rx():
    sim, net = make_net()
    received = []

    class CountingHost(Host):
        batched_rx_ok = True          # explicit opt-in despite override

        def deliver(self, s):
            received.append(s.seq)
            super().deliver(s)

    b = CountingHost(sim, net, "10.0.0.2", "b")
    assert b.batched_rx_ok is True
    # No matching connection here, so the fast path consumes nothing and
    # the remainder still routes through the override — the opt-in only
    # licenses handle_burst to bypass the hook for in-order TCP runs.
    b.deliver_burst(_burst())
    assert received == [0, 1, 2, 3]


def test_rx_batching_kill_switch_forces_per_segment(monkeypatch):
    monkeypatch.setattr(Host, "rx_batching", False)
    sim, net = make_net()
    b = Host(sim, net, "10.0.0.2", "b")
    calls = []
    original = Host._deliver_fast

    def spy(self, s):
        calls.append(s.seq)
        original(self, s)

    monkeypatch.setattr(Host, "_deliver_fast", spy)
    b.deliver_burst(_burst(3))
    # Every member individually delivered (the fast path would have
    # consumed a TCP run in one handle_burst call; with no connection
    # they all fall through either way — the point is the count).
    assert calls == [0, 1, 2]
