"""Impairment model: loss, reorder, duplication, jitter, flaps, TTL."""

import pytest

from repro.net import Flags, Host, Impairment, Network, Segment, Simulator


def make_net(**kwargs):
    sim = Simulator()
    net = Network(sim, **kwargs)
    Host(sim, net, "10.0.0.1", "a")
    Host(sim, net, "10.0.0.2", "b")
    return sim, net


def rst_segment():
    # A stray RST is silently ignored by the receiving host, so these
    # tests count pure deliveries without response chatter.
    return Segment(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1234,
                   dst_port=80, flags=Flags.RST)


# ------------------------------------------------------------- validation


def test_rates_must_be_probabilities():
    for field in ("loss", "reorder", "duplicate"):
        with pytest.raises(ValueError):
            Impairment(**{field: 1.5})
        with pytest.raises(ValueError):
            Impairment(**{field: -0.1})


def test_delays_must_be_nonnegative():
    for field in ("reorder_skew", "duplicate_gap", "jitter"):
        with pytest.raises(ValueError):
            Impairment(**{field: -0.5})


def test_flap_windows_must_be_ordered():
    with pytest.raises(ValueError):
        Impairment(flaps=((5.0, 2.0),))
    with pytest.raises(ValueError):
        Impairment(flaps=((3.0, 3.0),))


def test_active_and_is_down():
    assert not Impairment().active
    assert Impairment(loss=0.1).active
    assert Impairment(jitter=0.1).active
    imp = Impairment(flaps=((10.0, 20.0),))
    assert imp.active
    assert imp.is_down(10.0)
    assert imp.is_down(19.99)
    assert not imp.is_down(20.0)
    assert not imp.is_down(5.0)


# --------------------------------------------------------- network wiring


def test_inactive_impairment_is_equivalent_to_none():
    sim, net = make_net(impairment=Impairment())
    assert net.reliable
    assert net.impairment_for("10.0.0.1", "10.0.0.2") is None
    net.send_segment(rst_segment())
    sim.run(until=1)
    assert net.segments_delivered == 1
    assert net.impairment_drops == 0
    assert sim.bus.counters == {"sim.events": 1}


def test_loss_drops_and_counts():
    sim, net = make_net(impairment=Impairment(loss=1.0))
    assert not net.reliable
    net.send_segment(rst_segment())
    sim.run(until=1)
    assert net.segments_delivered == 0
    assert net.impairment_drops == 1
    assert sim.bus.count("net.loss") == 1


def test_duplicate_delivers_twice():
    sim, net = make_net(impairment=Impairment(duplicate=1.0))
    net.send_segment(rst_segment())
    sim.run(until=1)
    assert net.segments_delivered == 2
    assert sim.bus.count("net.duplicate") == 1


def test_reorder_holds_segment_back():
    sim, net = make_net(
        impairment=Impairment(reorder=1.0, reorder_skew=0.5))
    net.send_segment(rst_segment())
    sim.run(until=0.1)          # past base latency, before the skew
    assert net.segments_delivered == 0
    sim.run(until=1)
    assert net.segments_delivered == 1
    assert sim.bus.count("net.reorder") == 1


def test_jitter_never_drops():
    sim, net = make_net(impairment=Impairment(jitter=0.25))
    for _ in range(20):
        net.send_segment(rst_segment())
    sim.run(until=2)
    assert net.segments_delivered == 20
    assert net.impairment_drops == 0


def test_flap_window_blacks_out_the_link():
    sim, net = make_net(impairment=Impairment(flaps=((10.0, 20.0),)))
    net.send_segment(rst_segment())                       # t=0: up
    sim.schedule(15.0, net.send_segment, rst_segment())   # t=15: down
    sim.schedule(25.0, net.send_segment, rst_segment())   # t=25: up again
    sim.run(until=30)
    assert net.segments_delivered == 2
    assert sim.bus.count("net.flap.drop") == 1


def test_per_pair_impairment_scoped_to_that_path():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "10.0.0.1", "a")
    Host(sim, net, "10.0.0.2", "b")
    Host(sim, net, "10.0.0.3", "c")
    assert net.reliable
    net.set_impairment("10.0.0.1", "10.0.0.2", Impairment(loss=1.0))
    assert not net.reliable
    net.send_segment(rst_segment())  # impaired pair: dropped
    other = Segment(src_ip="10.0.0.1", dst_ip="10.0.0.3", src_port=1,
                    dst_port=80, flags=Flags.RST)
    net.send_segment(other)          # unimpaired pair: delivered
    sim.run(until=1)
    assert net.segments_delivered == 1
    assert net.impairment_drops == 1
    net.set_impairment("10.0.0.1", "10.0.0.2", None)
    assert net.reliable


def test_set_default_impairment_toggles_reliable():
    sim, net = make_net()
    assert net.reliable
    net.set_default_impairment(Impairment(loss=0.5))
    assert not net.reliable
    net.set_default_impairment(Impairment())  # inactive clears
    assert net.reliable


def test_impaired_runs_are_seed_reproducible():
    def run(seed):
        import random
        sim = Simulator()
        net = Network(sim, impairment=Impairment(loss=0.3, reorder=0.2,
                                                 duplicate=0.1, jitter=0.01),
                      rng=random.Random(seed))
        Host(sim, net, "10.0.0.1", "a")
        Host(sim, net, "10.0.0.2", "b")
        for _ in range(200):
            net.send_segment(rst_segment())
        sim.run(until=5)
        return (net.segments_delivered, net.impairment_drops,
                dict(sim.bus.counters))

    assert run(11) == run(11)
    assert run(11) != run(12)  # different draws with a different seed


# --------------------------------------------------------- TTL regression


def test_ttl_expired_segment_dropped_not_delivered():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "10.0.0.1", "a")
    b = Host(sim, net, "10.0.0.2", "b")
    received = []
    b.deliver = received.append  # bypass TCP: record raw arrivals
    net.set_hops("10.0.0.1", "10.0.0.2", 64)
    seg = Segment(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1,
                  dst_port=80, flags=Flags.RST, ttl=64)
    net.send_segment(seg)
    sim.run(until=1)
    assert received == []
    assert net.segments_delivered == 0
    assert net.segments_dropped == 1
    assert sim.bus.count("net.ttl.expired") == 1


def test_ttl_surviving_segment_still_delivered():
    sim = Simulator()
    net = Network(sim)
    Host(sim, net, "10.0.0.1", "a")
    b = Host(sim, net, "10.0.0.2", "b")
    received = []
    b.deliver = received.append
    net.set_hops("10.0.0.1", "10.0.0.2", 63)
    seg = Segment(src_ip="10.0.0.1", dst_ip="10.0.0.2", src_port=1,
                  dst_port=80, flags=Flags.RST, ttl=64)
    net.send_segment(seg)
    sim.run(until=1)
    assert len(received) == 1
    assert received[0].ttl == 1
