"""ChaCha20, Poly1305, and ChaCha20-Poly1305 against RFC 8439 vectors."""

import pytest

from repro.crypto import (
    AuthenticationError,
    ChaCha20,
    ChaCha20DJB,
    ChaCha20Poly1305,
    chacha20_block,
    poly1305_mac,
)

RFC_KEY = bytes(range(32))
RFC_NONCE = bytes.fromhex("000000090000004a00000000")


def test_chacha20_block_rfc8439_2_3_2():
    block = chacha20_block(RFC_KEY, 1, RFC_NONCE)
    assert block.hex() == (
        "10f1e7e4d13b5915500fdd1fa32071c4"
        "c7d1f4c733c068030422aa9ac3d46c4e"
        "d2826446079faa0914c2d705d98b02a2"
        "b5129cd1de164eb9cbd083e8a2503c4e"
    )


def test_chacha20_encrypt_rfc8439_2_4_2():
    key = bytes(range(32))
    nonce = bytes.fromhex("000000000000004a00000000")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    ct = ChaCha20(key, nonce, counter=1).encrypt(plaintext)
    assert ct.hex().startswith("6e2e359a2568f98041ba0728dd0d6981")
    assert ct.hex().endswith("874d")
    assert ChaCha20(key, nonce, counter=1).decrypt(ct) == plaintext


def test_chacha20_incremental_state():
    key, nonce = bytes(32), bytes(12)
    data = bytes(200)
    oneshot = ChaCha20(key, nonce).encrypt(data)
    stream = ChaCha20(key, nonce)
    chunked = b"".join(stream.encrypt(data[i : i + 13]) for i in range(0, 200, 13))
    assert chunked == oneshot


def test_chacha20_djb_distinct_from_ietf():
    key = bytes(range(32))
    djb = ChaCha20DJB(key, bytes(8)).encrypt(bytes(64))
    ietf = ChaCha20(key, bytes(12)).encrypt(bytes(64))
    # With an all-zero nonce and counter the layouts coincide, so instead
    # use a nonzero nonce to confirm the variants differ.
    djb2 = ChaCha20DJB(key, b"\x01" + bytes(7)).encrypt(bytes(64))
    assert djb == ietf  # zero nonce/counter: identical initial state
    assert djb2 != djb


def test_poly1305_rfc8439_2_5_2():
    key = bytes.fromhex(
        "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b"
    )
    msg = b"Cryptographic Forum Research Group"
    assert poly1305_mac(key, msg).hex() == "a8061dc1305136c6c22b8baf0c0127a9"


def test_aead_rfc8439_2_8_2():
    key = bytes.fromhex(
        "808182838485868788898a8b8c8d8e8f909192939495969798999a9b9c9d9e9f"
    )
    nonce = bytes.fromhex("070000004041424344454647")
    aad = bytes.fromhex("50515253c0c1c2c3c4c5c6c7")
    plaintext = (
        b"Ladies and Gentlemen of the class of '99: If I could offer you "
        b"only one tip for the future, sunscreen would be it."
    )
    sealed = ChaCha20Poly1305(key).seal(nonce, plaintext, aad)
    assert sealed[-16:].hex() == "1ae10b594f09e26a7e902ecbd0600691"
    assert ChaCha20Poly1305(key).open(nonce, sealed, aad) == plaintext


def test_aead_rejects_tampering():
    box = ChaCha20Poly1305(bytes(32))
    sealed = bytearray(box.seal(bytes(12), b"hello"))
    sealed[0] ^= 1
    with pytest.raises(AuthenticationError):
        box.open(bytes(12), bytes(sealed))


def test_aead_rejects_short_input():
    with pytest.raises(AuthenticationError):
        ChaCha20Poly1305(bytes(32)).open(bytes(12), b"short")
