"""Defenses: brdgrd traffic shaping and consistent-reaction hardening."""

import random

import pytest

from repro.defense import Brdgrd, harden
from repro.runtime.topology import build_world
from repro.gfw import DetectorConfig
from repro.net import Host, Network, Simulator
from repro.probesim import ProberSimulator, ReactionKind, build_random_probe_row
from repro.shadowsocks import ShadowsocksClient, ShadowsocksServer, get_profile


def test_brdgrd_fragments_first_packet():
    sim = Simulator()
    net = Network(sim)
    client_host = Host(sim, net, "192.0.2.10", "client")
    server_host = Host(sim, net, "198.51.100.10", "server")
    web = Host(sim, net, "198.18.0.10", "web")
    web.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(b"ok")))
    net.register_name("example.com", web.ip)
    guard = Brdgrd(server_host.ip, 8388, rng=random.Random(1))
    net.add_middlebox(guard)
    ShadowsocksServer(server_host, 8388, "pw", "aes-256-gcm", "ss-libev-3.3.1")
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw", "aes-256-gcm")
    session = client.open("example.com", 80, b"GET / HTTP/1.1\r\n\r\n" + b"x" * 300)
    sim.run(until=30)
    assert bytes(session.reply) == b"ok"  # the tunnel still works
    assert guard.rewritten >= 1
    first_data = [r.segment for r in client_host.capture.sent() if r.segment.is_data][0]
    assert len(first_data.payload) <= 40  # clamped by brdgrd's window


def test_brdgrd_window_range_validated():
    with pytest.raises(ValueError):
        Brdgrd("1.2.3.4", 80, window_low=0)
    with pytest.raises(ValueError):
        Brdgrd("1.2.3.4", 80, window_low=50, window_high=10)


def test_brdgrd_fixed_window():
    guard = Brdgrd("1.2.3.4", 80, fixed_window=24)
    assert guard._choose_window() == 24


def test_brdgrd_toggle():
    guard = Brdgrd("1.2.3.4", 80)
    guard.disable()
    assert not guard.active
    guard.enable()
    assert guard.active


def test_brdgrd_defeats_passive_detector():
    """With brdgrd on, first-packet lengths leave the replay sweet spot."""
    detector_cfg = DetectorConfig(base_rate=1.0)  # everything else default
    world = build_world(seed=11, detector_config=detector_cfg,
                        websites=["example.com"])
    server_host = world.add_server("ss", region="uk")
    client_host = world.add_client("client")
    guard = Brdgrd(server_host.ip, 8388, rng=random.Random(2))
    world.net.add_middlebox(guard)
    ShadowsocksServer(server_host, 8388, "pw", "chacha20-ietf-poly1305",
                      "outline-1.0.7")
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "chacha20-ietf-poly1305")
    from repro.workloads import CurlDriver

    driver = CurlDriver(client, rng=random.Random(3), sites=["example.com"])
    driver.run_schedule(count=40, interval=5.0)
    world.sim.run(until=3600)
    assert world.gfw.flagged_connections == 0

    # Control: same workload with brdgrd disabled draws flags.
    guard.disable()
    driver.run_schedule(count=40, interval=5.0)
    world.sim.run(until=world.sim.now + 3600)
    assert world.gfw.flagged_connections > 0


def test_brdgrd_breaks_legacy_parsers():
    """§7.1 limitation: implementations demanding a complete spec in the
    first read RST the fragmented handshake."""
    sim = Simulator()
    net = Network(sim)
    client_host = Host(sim, net, "192.0.2.10", "client")
    server_host = Host(sim, net, "198.51.100.10", "server")
    # Window sized so the first segment carries the IV plus a partial
    # target spec (IV=16: lengths 17-22) — the case that trips legacy parsers.
    guard = Brdgrd(server_host.ip, 8388, rng=random.Random(4), window_low=17,
                   window_high=22)
    net.add_middlebox(guard)
    ShadowsocksServer(server_host, 8388, "pw", "aes-256-ctr", "ssr")
    client = ShadowsocksClient(client_host, server_host.ip, 8388, "pw",
                               "aes-256-ctr")
    session = client.open("example.com", 80, b"GET /")
    sim.run(until=30)
    assert session.reset  # connection failed with RST


def test_hardened_profile_shows_only_timeouts():
    base = get_profile("outline-1.0.6")
    hardened = harden(base)
    row = build_random_probe_row(hardened, "chacha20-ietf-poly1305",
                                 [49, 50, 51, 100, 221], trials=4)
    for cell in row.cells.values():
        assert cell.dominant == ReactionKind.TIMEOUT


def test_hardened_profile_gains_replay_filter():
    base = get_profile("outline-1.0.7")
    assert not base.replay_filter
    hardened = harden(base)
    assert hardened.replay_filter
    sim = ProberSimulator(hardened, "chacha20-ietf-poly1305")
    payload = sim.record_legitimate_payload()
    from repro.gfw import ProbeType

    result = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
    assert result.reaction != ReactionKind.DATA
