"""Figure 10: server reactions to random probes, per implementation/cipher.

These tests pin the thresholds the paper reports:

10a (stream):  TIMEOUT through the IV length; RST (usually) just past it
               for old libev; never RST for new libev; FIN/ACK possible
               once a complete target spec fits (IV+7).
10b (AEAD):    old libev RSTs at salt+35 and beyond; new libev always
               times out; Outline v1.0.6 times out below 50, FIN/ACKs at
               exactly 50, RSTs above; Outline v1.0.7+ always times out.
"""

import pytest

from repro.probesim import ProberSimulator, ReactionKind, build_random_probe_row


def sweep(profile, method, lengths, trials=6, seed=0):
    return build_random_probe_row(profile, method, lengths, trials=trials, seed=seed)


# ------------------------------------------------------------- Figure 10a


def test_libev_old_stream_iv8_timeout_through_iv():
    row = sweep("ss-libev-3.1.3", "chacha20", [1, 4, 8], trials=4)
    for length in (1, 4, 8):
        assert row.cells[length].dominant == ReactionKind.TIMEOUT


def test_libev_old_stream_iv8_rst_after_iv():
    row = sweep("ss-libev-3.1.3", "chacha20", [9, 10, 14], trials=16)
    for length in (9, 10, 14):
        assert row.cells[length].fraction(ReactionKind.RST) > 0.6
        assert row.cells[length].fraction(ReactionKind.FINACK) == 0.0


def test_libev_old_stream_iv8_finack_possible_at_15():
    row = sweep("ss-libev-3.1.3", "chacha20", [15], trials=120, seed=2)
    cell = row.cells[15]
    # RST ~13/16, the rest TIMEOUT or FIN/ACK.
    assert 0.70 < cell.fraction(ReactionKind.RST) < 0.92
    assert cell.fraction(ReactionKind.FINACK) > 0.0


def test_libev_old_stream_iv12_threshold():
    row = sweep("ss-libev-3.2.5", "chacha20-ietf", [12, 13], trials=12)
    assert row.cells[12].dominant == ReactionKind.TIMEOUT
    assert row.cells[13].fraction(ReactionKind.RST) > 0.6


def test_libev_old_stream_iv16_threshold():
    row = sweep("ss-libev-3.0.8", "aes-256-ctr", [16, 17], trials=12)
    assert row.cells[16].dominant == ReactionKind.TIMEOUT
    assert row.cells[17].fraction(ReactionKind.RST) > 0.6


def test_libev_new_stream_never_rst():
    row = sweep("ss-libev-3.3.1", "aes-256-ctr", [9, 17, 23, 40, 100], trials=16)
    for cell in row.cells.values():
        assert cell.fraction(ReactionKind.RST) == 0.0


def test_libev_new_stream_mostly_timeout_some_finack():
    row = sweep("ss-libev-3.3.3", "chacha20", [33], trials=150, seed=3)
    cell = row.cells[33]
    assert cell.fraction(ReactionKind.TIMEOUT) > 0.70
    assert cell.fraction(ReactionKind.FINACK) > 0.0


# ------------------------------------------------------------- Figure 10b


def test_libev_old_aead_salt16_thresholds():
    row = sweep("ss-libev-3.1.3", "aes-128-gcm", [49, 50, 51, 52, 73, 221], trials=4)
    assert row.cells[49].dominant == ReactionKind.TIMEOUT
    assert row.cells[50].dominant == ReactionKind.TIMEOUT
    for length in (51, 52, 73, 221):
        assert row.cells[length].fraction(ReactionKind.RST) == 1.0


def test_libev_old_aead_salt24_thresholds():
    row = sweep("ss-libev-3.2.5", "aes-192-gcm", [58, 59], trials=4)
    assert row.cells[58].dominant == ReactionKind.TIMEOUT
    assert row.cells[59].fraction(ReactionKind.RST) == 1.0


def test_libev_old_aead_salt32_thresholds():
    row = sweep("ss-libev-3.0.8", "aes-256-gcm", [66, 67], trials=4)
    assert row.cells[66].dominant == ReactionKind.TIMEOUT
    assert row.cells[67].fraction(ReactionKind.RST) == 1.0


def test_libev_new_aead_always_timeout():
    row = sweep("ss-libev-3.3.1", "aes-256-gcm", [1, 50, 67, 100, 221], trials=4)
    for cell in row.cells.values():
        assert cell.dominant == ReactionKind.TIMEOUT


def test_outline_106_quirk_at_exactly_50():
    row = sweep("outline-1.0.6", "chacha20-ietf-poly1305",
                [48, 49, 50, 51, 60, 221], trials=4)
    assert row.cells[49].dominant == ReactionKind.TIMEOUT
    assert row.cells[50].fraction(ReactionKind.FINACK) == 1.0
    for length in (51, 60, 221):
        assert row.cells[length].fraction(ReactionKind.RST) == 1.0


def test_outline_107_always_timeout():
    row = sweep("outline-1.0.7", "chacha20-ietf-poly1305",
                [49, 50, 51, 100, 221], trials=4)
    for cell in row.cells.values():
        assert cell.dominant == ReactionKind.TIMEOUT


def test_outline_108_always_timeout():
    row = sweep("outline-1.0.8", "chacha20-ietf-poly1305", [50, 221], trials=3)
    for cell in row.cells.values():
        assert cell.dominant == ReactionKind.TIMEOUT


def test_gfw_probe_lengths_straddle_stream_thresholds():
    """NR1 trios (7,8,9 / 11,12,13 / 15,16,17) bracket the IV reactions."""
    row = sweep("ss-libev-3.1.3", "chacha20", [7, 8, 9], trials=10)
    assert row.cells[7].dominant == ReactionKind.TIMEOUT
    assert row.cells[8].dominant == ReactionKind.TIMEOUT
    assert row.cells[9].dominant == ReactionKind.RST
