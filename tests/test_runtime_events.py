"""The instrumentation bus: counters, scalar series, merging."""

from repro.runtime import EventBus, merge_counters


def test_incr_and_count():
    bus = EventBus()
    bus.incr("probe.sent")
    bus.incr("probe.sent", 3)
    assert bus.count("probe.sent") == 4
    assert bus.count("never.seen") == 0


def test_observe_scalar_stats():
    bus = EventBus()
    for v in (2.0, 8.0, 5.0):
        bus.observe("probe.replay_delay", v)
    snap = bus.snapshot()
    stats = snap["scalars"]["probe.replay_delay"]
    assert stats["count"] == 3
    assert stats["sum"] == 15.0
    assert stats["min"] == 2.0
    assert stats["max"] == 8.0


def test_snapshot_counters_are_sorted_and_detached():
    bus = EventBus()
    bus.incr("zzz")
    bus.incr("aaa")
    snap = bus.snapshot()
    assert list(snap["counters"]) == ["aaa", "zzz"]
    snap["counters"]["aaa"] = 99
    assert bus.count("aaa") == 1


def test_subscribe_sees_increments():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda name, value: seen.append((name, value)))
    bus.incr("gfw.flow.opened")
    bus.observe("x", 2.5)
    assert ("gfw.flow.opened", 1) in seen
    assert ("x", 2.5) in seen


def test_absorb_merges_counters_and_scalars():
    a, b = EventBus(), EventBus()
    a.incr("probe.sent", 2)
    b.incr("probe.sent", 3)
    b.incr("only.b")
    a.observe("delay", 1.0)
    b.observe("delay", 9.0)
    a.absorb(b)
    assert a.count("probe.sent") == 5
    assert a.count("only.b") == 1
    stats = a.snapshot()["scalars"]["delay"]
    assert stats["count"] == 2 and stats["min"] == 1.0 and stats["max"] == 9.0


def test_clear_resets_everything():
    bus = EventBus()
    bus.incr("a")
    bus.observe("b", 1.0)
    bus.clear()
    snap = bus.snapshot()
    assert snap["counters"] == {} and snap["scalars"] == {}


def test_merge_counters_sums_across_snapshots():
    a, b = EventBus(), EventBus()
    a.incr("x", 2)
    b.incr("x", 5)
    b.incr("y")
    merged = merge_counters([a.snapshot(), b.snapshot()])
    assert merged == {"x": 7, "y": 1}
