"""The instrumentation bus: counters, scalar series, merging."""

from repro.runtime import EventBus, merge_counters


def test_incr_and_count():
    bus = EventBus()
    bus.incr("probe.sent")
    bus.incr("probe.sent", 3)
    assert bus.count("probe.sent") == 4
    assert bus.count("never.seen") == 0


def test_observe_scalar_stats():
    bus = EventBus()
    for v in (2.0, 8.0, 5.0):
        bus.observe("probe.replay_delay", v)
    snap = bus.snapshot()
    stats = snap["scalars"]["probe.replay_delay"]
    assert stats["count"] == 3
    assert stats["sum"] == 15.0
    assert stats["min"] == 2.0
    assert stats["max"] == 8.0


def test_snapshot_counters_are_sorted_and_detached():
    bus = EventBus()
    bus.incr("zzz")
    bus.incr("aaa")
    snap = bus.snapshot()
    assert list(snap["counters"]) == ["aaa", "zzz"]
    snap["counters"]["aaa"] = 99
    assert bus.count("aaa") == 1


def test_subscribe_sees_increments():
    bus = EventBus()
    seen = []
    bus.subscribe(lambda name, value: seen.append((name, value)))
    bus.incr("gfw.flow.opened")
    bus.observe("x", 2.5)
    assert ("gfw.flow.opened", 1) in seen
    assert ("x", 2.5) in seen


def test_absorb_merges_counters_and_scalars():
    a, b = EventBus(), EventBus()
    a.incr("probe.sent", 2)
    b.incr("probe.sent", 3)
    b.incr("only.b")
    a.observe("delay", 1.0)
    b.observe("delay", 9.0)
    a.absorb(b)
    assert a.count("probe.sent") == 5
    assert a.count("only.b") == 1
    stats = a.snapshot()["scalars"]["delay"]
    assert stats["count"] == 2 and stats["min"] == 1.0 and stats["max"] == 9.0


def test_clear_resets_everything():
    bus = EventBus()
    bus.incr("a")
    bus.observe("b", 1.0)
    bus.clear()
    snap = bus.snapshot()
    assert snap["counters"] == {} and snap["scalars"] == {}


def test_merge_counters_sums_across_snapshots():
    a, b = EventBus(), EventBus()
    a.incr("x", 2)
    b.incr("x", 5)
    b.incr("y")
    merged = merge_counters([a.snapshot(), b.snapshot()])
    assert merged == {"x": 7, "y": 1}


# ------------------------------------------------- structured records


def test_emit_reaches_record_subscribers():
    bus = EventBus()
    seen = []
    bus.subscribe_records(seen.append)
    bus.emit("probe", {"probe_type": "R1", "length": 221})
    assert seen == [{"probe_type": "R1", "length": 221, "kind": "probe"}]


def test_unsubscribe_records_during_emit_keeps_later_subscribers():
    """Regression: a subscriber detaching itself mid-emit must not make
    emit() skip the subscriber that follows it in the dispatch list."""
    bus = EventBus()
    calls = []

    def first(record):
        calls.append("first")
        bus.unsubscribe_records(first)

    def second(record):
        calls.append("second")

    bus.subscribe_records(first)
    bus.subscribe_records(second)
    bus.emit("verdict", {"action": "block"})
    assert calls == ["first", "second"]
    calls.clear()
    bus.emit("verdict", {"action": "block"})
    assert calls == ["second"]


def test_unsubscribe_records_accepts_recreated_bound_method():
    class Collector:
        def __init__(self):
            self.records = []

        def observe(self, record):
            self.records.append(record)

    bus = EventBus()
    collector = Collector()
    bus.subscribe_records(collector.observe)
    # `collector.observe` below is a *new* bound-method object, equal to
    # but not identical with the one subscribed above.
    bus.unsubscribe_records(collector.observe)
    bus.emit("probe", {"x": 1})
    assert collector.records == []


def test_unsubscribe_unknown_subscriber_is_a_noop():
    bus = EventBus()
    bus.unsubscribe_records(lambda record: None)  # must not raise
    bus.emit("probe", {"x": 1})


def test_record_taps_attach_to_new_buses_only():
    from repro.runtime import install_record_tap, remove_record_tap

    seen = []
    before = EventBus()
    install_record_tap(seen.append)
    try:
        after = EventBus()
        before.emit("probe", {"n": 1})
        after.emit("probe", {"n": 2})
        assert [r["n"] for r in seen] == [2]
    finally:
        remove_record_tap(seen.append)
    assert EventBus()._record_subscribers == []


def test_sanitize_record_makes_bytes_and_objects_json_safe():
    import json

    from repro.runtime import sanitize_record

    class Opaque:
        pass

    doc = sanitize_record({
        "kind": "payload",
        "data": b"\x16\x03\x01\x02\x00abcdef",
        "nested": [1, {"blob": b"xy"}, (2.5, None)],
        "obj": Opaque(),
    })
    assert doc["data"] == {"__bytes__": 11,
                           "prefix": b"\x16\x03\x01\x02\x00abc".hex()}
    assert doc["nested"][1]["blob"]["__bytes__"] == 2
    assert doc["obj"] == {"__type__": "Opaque"}
    json.dumps(doc)  # round-trippable by construction
