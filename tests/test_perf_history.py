"""History-log rotation and bench-compare edge cases."""

import json

from repro.perf import (
    BenchEntry,
    append_history,
    compare_entries,
    format_comparison,
)


def _entry(name, value=1.0):
    return BenchEntry(name=name, unit="ops/s", value=value, git_rev="r0")


def _lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


# --------------------------------------------------------- history rotation


def test_append_writes_the_durable_schema(tmp_path):
    path = tmp_path / "history.jsonl"
    count = append_history(path, [_entry("a", 2.0), _entry("b", 3.0)])
    assert count == 2
    lines = _lines(path)
    assert [ln["name"] for ln in lines] == ["a", "b"]
    assert set(lines[0]) == {"name", "value", "git_rev", "timestamp"}
    assert lines[0]["value"] == 2.0


def test_rotation_keeps_newest_per_name(tmp_path):
    path = tmp_path / "history.jsonl"
    for value in range(7):
        append_history(path, [_entry("hot", float(value))], keep_last=3)
    assert [ln["value"] for ln in _lines(path)] == [4.0, 5.0, 6.0]


def test_rotation_is_per_name_not_global(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(path, [_entry("rare", 9.0)], keep_last=2)
    for value in range(5):
        append_history(path, [_entry("hot", float(value))], keep_last=2)
    lines = _lines(path)
    # The single "rare" line survives even though "hot" rotated heavily,
    # and original relative order is preserved.
    assert [(ln["name"], ln["value"]) for ln in lines] == [
        ("rare", 9.0), ("hot", 3.0), ("hot", 4.0)]


def test_rotation_preserves_unparseable_lines(tmp_path):
    path = tmp_path / "history.jsonl"
    path.write_text("not json at all\n")
    for value in range(3):
        append_history(path, [_entry("hot", float(value))], keep_last=1)
    raw = path.read_text().splitlines()
    assert raw[0] == "not json at all"
    assert json.loads(raw[1])["value"] == 2.0


def test_keep_last_zero_disables_rotation(tmp_path):
    path = tmp_path / "history.jsonl"
    for value in range(5):
        append_history(path, [_entry("hot", float(value))], keep_last=0)
    assert len(_lines(path)) == 5


def test_default_cap_bounds_the_file(tmp_path):
    path = tmp_path / "history.jsonl"
    batch = [_entry("hot", float(i)) for i in range(250)]
    append_history(path, batch)
    lines = _lines(path)
    assert len(lines) == 200
    assert lines[0]["value"] == 50.0 and lines[-1]["value"] == 249.0


# ------------------------------------------------------ compare edge cases


def test_baseline_only_entry_is_missing_not_a_regression():
    comparison = compare_entries([_entry("kept", 1.0)],
                                 [_entry("kept", 1.0), _entry("retired", 5.0)])
    assert comparison.ok
    by_name = {row["name"]: row for row in comparison.rows}
    assert by_name["retired"]["status"] == "missing"
    assert by_name["retired"]["current"] is None
    assert by_name["retired"]["ratio"] is None
    assert by_name["kept"]["status"] == "ok"


def test_current_only_entry_is_new_not_a_regression():
    comparison = compare_entries([_entry("kept", 1.0), _entry("fresh", 2.0)],
                                 [_entry("kept", 1.0)])
    assert comparison.ok
    by_name = {row["name"]: row for row in comparison.rows}
    assert by_name["fresh"]["status"] == "new"
    assert by_name["fresh"]["baseline"] is None
    assert by_name["fresh"]["ratio"] is None


def test_one_sided_entries_do_not_mask_a_real_regression():
    comparison = compare_entries(
        [_entry("slow", 1.0), _entry("fresh", 2.0)],
        [_entry("slow", 10.0), _entry("retired", 5.0)],
        tolerance=0.5)
    assert not comparison.ok
    assert comparison.regressions == ["slow"]


def test_format_comparison_renders_one_sided_rows():
    comparison = compare_entries([_entry("fresh", 2.0)],
                                 [_entry("retired", 5.0)])
    text = format_comparison(comparison)
    assert "new" in text and "missing" in text
    assert text.strip().endswith("OK")
