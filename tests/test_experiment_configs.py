"""Experiment configuration plumbing."""

import pytest

from repro.experiments import (
    BrdgrdExperimentConfig,
    ShadowsocksExperimentConfig,
    SinkExperimentConfig,
    TABLE4_EXPERIMENTS,
    build_world,
    run_sink_experiment,
)


def test_table4_presets_match_paper():
    assert TABLE4_EXPERIMENTS["1.a"]["mode"] == "sink"
    assert TABLE4_EXPERIMENTS["1.b"]["mode"] == "responding"
    assert TABLE4_EXPERIMENTS["2"]["entropy_range"] == (0.0, 2.0)
    assert TABLE4_EXPERIMENTS["3"]["length_range"] == (1, 2000)


def test_table4_factory_with_overrides():
    config = SinkExperimentConfig.table4("2", connections=10, seed=42)
    assert config.mode == "sink"
    assert config.entropy_range == (0.0, 2.0)
    assert config.connections == 10
    assert config.seed == 42


def test_table4_unknown_experiment():
    with pytest.raises(KeyError):
        SinkExperimentConfig.table4("9.z")


def test_sink_rejects_bad_mode():
    with pytest.raises(ValueError):
        run_sink_experiment(SinkExperimentConfig(mode="chaos"))


def test_world_add_host_allocates_sequential_ips():
    world = build_world(seed=1)
    a = world.add_server("a", region="uk")
    b = world.add_server("b", region="uk")
    c = world.add_client("c")
    assert a.ip.startswith("198.51.100.")
    assert b.ip != a.ip
    assert c.ip.startswith("192.0.2.")
    assert world.hosts["a"] is a


def test_world_website_registration():
    world = build_world(seed=2, websites=["w.example"])
    assert world.net.resolve("w.example") is not None
    host = world.hosts["web-w.example"]
    assert host.ip.startswith("198.18.0.")


def test_brdgrd_config_defaults_sane():
    config = BrdgrdExperimentConfig()
    for start, end in config.brdgrd_windows:
        assert 0 <= start < end <= config.duration


def test_shadowsocks_config_profiles_cycle():
    config = ShadowsocksExperimentConfig(libev_pairs=3)
    assert len(config.libev_profiles) >= 2  # cycled across pairs


def test_subnet_prefix_normalization():
    from repro.runtime.topology import subnet_prefix

    assert subnet_prefix("192.0.2.0/24") == "192.0.2."
    assert subnet_prefix("192.0.2.0") == "192.0.2."
    assert subnet_prefix("192.0.2.") == "192.0.2."


def test_add_host_accepts_any_subnet_spelling():
    world = build_world(seed=0)
    a = world.add_host("a", "203.0.113.0/24")
    b = world.add_host("b", "203.0.113.")
    assert a.ip == "203.0.113.10"
    assert b.ip == "203.0.113.11"


def test_add_host_exhausts_subnet_with_clear_error():
    world = build_world(seed=0)
    capacity = world.LAST_HOST_INDEX - world.FIRST_HOST_INDEX + 1
    for i in range(capacity):
        world.add_host(f"h{i}", "203.0.113.")
    with pytest.raises(ValueError, match="203.0.113.0/24 is exhausted"):
        world.add_host("one-too-many", "203.0.113.")
