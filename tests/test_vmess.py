"""VMess model (§9 future work): protocol, proxying, and probing weaknesses."""

import random

import pytest

from repro.net import Host, Network, Simulator
from repro.vmess import (
    AUTH_WINDOW,
    VmessClient,
    VmessServer,
    auth_for,
    build_request,
    fnv1a32,
    parse_command,
)

USER_ID = bytes(range(16))


def make_world(profile="v2ray-legacy"):
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, net, "198.51.100.30", "vmess-server")
    client_host = Host(sim, net, "192.0.2.30", "vmess-client")
    prober_host = Host(sim, net, "192.0.2.31", "prober")
    web = Host(sim, net, "198.18.0.30", "web")
    web.listen(80, lambda c: setattr(c, "on_data",
                                     lambda d: c.send(b"vmess web reply")))
    net.register_name("site.example", web.ip)
    server = VmessServer(server_host, 10086, USER_ID, profile,
                         rng=random.Random(1))
    client = VmessClient(client_host, server_host.ip, 10086, USER_ID,
                         rng=random.Random(2))
    return sim, net, server, client, (server_host, client_host, prober_host)


# ----------------------------------------------------------------- protocol


def test_fnv1a32_known_values():
    assert fnv1a32(b"") == 0x811C9DC5
    assert fnv1a32(b"a") == 0xE40C292C


def test_auth_depends_on_time_and_user():
    a = auth_for(USER_ID, 1000)
    assert len(a) == 16
    assert a != auth_for(USER_ID, 1001)
    assert a != auth_for(bytes(16), 1000)


def test_build_and_parse_roundtrip():
    head, request = build_request(USER_ID, 5000, "site.example", 80,
                                  rng=random.Random(3))
    status, parsed, total = parse_command(USER_ID, 5000, head[16:])
    assert status == "ok"
    assert parsed.host == "site.example"
    assert parsed.port == 80
    assert parsed.response_key == request.response_key
    assert total == len(head) - 16


def test_parse_roundtrip_ipv4():
    head, _ = build_request(USER_ID, 5000, "10.1.2.3", 443,
                            rng=random.Random(4))
    status, parsed, _ = parse_command(USER_ID, 5000, head[16:])
    assert status == "ok" and parsed.host == "10.1.2.3" and parsed.port == 443


def test_parse_needs_more_then_ok():
    head, _ = build_request(USER_ID, 5000, "site.example", 80,
                            rng=random.Random(5), padding_len=7)
    section = head[16:]
    status, _, needed = parse_command(USER_ID, 5000, section[:20])
    assert status == "need_more"
    status, _, _ = parse_command(USER_ID, 5000, section)
    assert status == "ok"


def test_parse_detects_corruption():
    head, _ = build_request(USER_ID, 5000, "site.example", 80,
                            rng=random.Random(6))
    section = bytearray(head[16:])
    section[-1] ^= 0xFF  # corrupt the FNV hash
    status, _, _ = parse_command(USER_ID, 5000, bytes(section))
    assert status == "bad_hash"


def test_padding_nibble_validated():
    with pytest.raises(ValueError):
        build_request(USER_ID, 0, "a.b", 1, padding_len=16)


# ------------------------------------------------------------------ tunnel


def test_vmess_tunnel_roundtrip():
    sim, net, server, client, _ = make_world()
    session = client.open("site.example", 80, b"GET / HTTP/1.1\r\n\r\n")
    sim.run(until=20)
    assert bytes(session.reply) == b"vmess web reply"


def test_vmess_tunnel_hardened_profile():
    sim, net, server, client, _ = make_world("v2ray-4.23")
    session = client.open("site.example", 80, b"GET /")
    sim.run(until=20)
    assert bytes(session.reply) == b"vmess web reply"


def test_wrong_user_id_rejected():
    sim, net, server, _, (server_host, client_host, _) = make_world()
    intruder = VmessClient(client_host, server_host.ip, 10086, bytes(16),
                           rng=random.Random(7))
    session = intruder.open("site.example", 80, b"GET /")
    sim.run(until=20)
    assert session.reset  # legacy server aborts on bad auth
    assert not session.reply


# ----------------------------------------------------------- probing holes


def record_handshake(sim, client, client_host):
    session = client.open("site.example", 80, b"GET / HTTP/1.1\r\n\r\n")
    sim.run(until=sim.now + 5)
    first = [r.segment for r in client_host.capture.sent()
             if r.segment.is_data and r.segment.dst_port == 10086]
    return bytes(first[0].payload)


def replay(sim, prober_host, server_ip, payload):
    conn = prober_host.connect(server_ip, 10086)
    got = []
    conn.on_data = got.append
    state = {"reset": False}
    conn.on_reset = lambda: state.__setitem__("reset", True)
    conn.on_connected = lambda: conn.send(payload)
    sim.run(until=sim.now + 15)
    return got, state["reset"]


def test_legacy_vulnerable_to_replay_within_window():
    sim, net, server, client, (server_host, client_host, prober_host) = make_world()
    payload = record_handshake(sim, client, client_host)
    got, _ = replay(sim, prober_host, server_host.ip, payload)
    assert got  # the replayed handshake proxies and returns data


def test_legacy_replay_fails_beyond_auth_window():
    sim, net, server, client, (server_host, client_host, prober_host) = make_world()
    payload = record_handshake(sim, client, client_host)
    sim.run(until=sim.now + AUTH_WINDOW * 3)
    got, reset = replay(sim, prober_host, server_host.ip, payload)
    assert not got
    assert reset  # stale auth -> legacy server aborts


def test_hardened_rejects_replay_within_window():
    sim, net, server, client, (server_host, client_host, prober_host) = (
        make_world("v2ray-4.23"))
    payload = record_handshake(sim, client, client_host)
    got, reset = replay(sim, prober_host, server_host.ip, payload)
    assert not got
    assert not reset  # hardened server drains silently


def test_length_oracle_distinguishes_legacy_from_hardened():
    """The #2523-style oracle: a valid auth + garbage command section makes
    a legacy server abort the moment the implied length arrives; a hardened
    server never reacts."""
    outcomes = {}
    for profile in ("v2ray-legacy", "v2ray-4.23"):
        sim, net, server, client, (server_host, client_host, prober_host) = (
            make_world(profile))
        auth = auth_for(USER_ID, int(sim.now))
        garbage = bytes(random.Random(8).randrange(256) for _ in range(80))
        got, reset = replay(sim, prober_host, server_host.ip, auth + garbage)
        outcomes[profile] = reset
    assert outcomes["v2ray-legacy"] is True
    assert outcomes["v2ray-4.23"] is False


def test_vmess_triggers_gfw_probing_like_shadowsocks():
    """§9: VMess traffic is fully encrypted, so the GFW's first-packet
    trigger catches it too."""
    from repro.experiments import build_world
    from repro.gfw import DetectorConfig

    world = build_world(seed=9, detector_config=DetectorConfig(base_rate=1.0),
                        websites=["site.example"])
    server_host = world.add_server("vmess", region="uk")
    client_host = world.add_client("vmess-user")
    VmessServer(server_host, 10086, USER_ID, "v2ray-legacy",
                rng=random.Random(10))
    client = VmessClient(client_host, server_host.ip, 10086, USER_ID,
                         rng=random.Random(11))
    for i in range(15):
        world.sim.schedule(i * 30.0, client.open, "site.example", 80,
                           b"GET / HTTP/1.1\r\n\r\n" + b"x" * 250)
    world.sim.run(until=2 * 3600)
    assert world.gfw.flagged_connections > 0
    assert len(world.gfw.probe_log) > 0
