"""Shared fixtures: an in-process control plane on a background loop."""

import asyncio
import threading

import pytest


@pytest.fixture
def service_factory(tmp_path):
    """Start throwaway control planes on ephemeral ports.

    Yields ``factory(**config_overrides) -> (plane, client)``; every
    plane started through it is drained and its loop torn down after
    the test, so job workers never outlive the test process.
    """
    from repro.service import ControlPlane, ControlPlaneConfig, ServiceClient

    started = []

    def factory(**overrides):
        config_kwargs = {
            "host": "127.0.0.1",
            "port": 0,
            "workers": 2,
            "queue_size": 8,
            "cache_root": str(tmp_path / "service-cache"),
            "drain_timeout": 10.0,
        }
        config_kwargs.update(overrides)
        plane = ControlPlane(ControlPlaneConfig(**config_kwargs))
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(loop)
            loop.run_until_complete(plane.start())
            ready.set()
            loop.run_forever()

        thread = threading.Thread(target=run, daemon=True,
                                  name="control-plane-loop")
        thread.start()
        assert ready.wait(30), "control plane failed to start"
        started.append((plane, loop, thread))
        return plane, ServiceClient("127.0.0.1", plane.port, timeout=60)

    yield factory

    for plane, loop, thread in started:
        asyncio.run_coroutine_threadsafe(plane.stop(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=15)
        loop.close()


@pytest.fixture
def service(service_factory):
    """One default control plane: ``(plane, client)``."""
    return service_factory()
