"""AES-GCM against NIST GCM test vectors."""

import pytest

from repro.crypto import AESGCM, AuthenticationError


def test_nist_case1_empty():
    # Key = 0^128, IV = 0^96, empty plaintext and AAD.
    box = AESGCM(bytes(16))
    sealed = box.seal(bytes(12), b"")
    assert sealed.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_nist_case2_single_block():
    box = AESGCM(bytes(16))
    sealed = box.seal(bytes(12), bytes(16))
    assert sealed[:16].hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert sealed[16:].hex() == "ab6e47d42cec13bdf53a67b21257bddf"


def test_nist_case3_four_blocks():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    pt = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b391aafd255"
    )
    sealed = AESGCM(key).seal(iv, pt)
    assert sealed[:-16].hex() == (
        "42831ec2217774244b7221b784d0d49c"
        "e3aa212f2c02a4e035c17e2329aca12e"
        "21d514b25466931c7d8f6a5aac84aa05"
        "1ba30b396a0aac973d58e091473f5985"
    )
    assert sealed[-16:].hex() == "4d5c2af327cd64a62cf35abd2ba6fab4"


def test_nist_case4_with_aad():
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    pt = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    aad = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
    sealed = AESGCM(key).seal(iv, pt, aad)
    assert sealed[-16:].hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    assert AESGCM(key).open(iv, sealed, aad) == pt


def test_aes256_gcm_roundtrip():
    box = AESGCM(bytes(32))
    sealed = box.seal(b"\x01" * 12, b"payload bytes here", b"aad")
    assert box.open(b"\x01" * 12, sealed, b"aad") == b"payload bytes here"


def test_tamper_detection_every_position():
    box = AESGCM(bytes(16))
    sealed = box.seal(bytes(12), b"abcdef")
    for i in range(len(sealed)):
        bad = bytearray(sealed)
        bad[i] ^= 0x80
        with pytest.raises(AuthenticationError):
            box.open(bytes(12), bytes(bad))


def test_wrong_aad_rejected():
    box = AESGCM(bytes(16))
    sealed = box.seal(bytes(12), b"x", b"right")
    with pytest.raises(AuthenticationError):
        box.open(bytes(12), sealed, b"wrong")


# The vectorized GHASH (stride-8 chunk sums, engaged for records of
# GHASH_MIN_BLOCKS blocks and up) must agree with the scalar table walk
# on every size around the engagement threshold and chunk remainders.


@pytest.fixture
def no_record_cache():
    # The global record memo would satisfy the second seal()/open() from
    # the first box's result, so the scalar walk would never execute.
    from repro.crypto import recordcache

    was = recordcache.enabled()
    recordcache.set_enabled(False)
    yield
    recordcache.set_enabled(was)


@pytest.mark.parametrize("size", [
    2032, 2040, 2047, 2048, 2049, 2063, 2064, 2176,
    4096, 16384, 16401, 65536,
])
def test_vector_ghash_matches_scalar(size, no_record_cache):
    from repro.crypto import _numpy as _vec

    if not _vec.HAVE_NUMPY:
        pytest.skip("numpy unavailable; only the scalar path exists")
    key = bytes(range(32))
    iv = bytes(12)
    pt = bytes((i * 131 + 17) & 0xFF for i in range(size))
    aad = b"header" * 40

    vec_box = AESGCM(key)
    scalar_box = AESGCM(key)
    scalar_box._vtables = False       # pin this instance to the scalar walk
    sealed = vec_box.seal(iv, pt, aad)
    assert sealed == scalar_box.seal(iv, pt, aad)
    assert scalar_box.open(iv, sealed, aad) == pt
    assert vec_box.open(iv, sealed, aad) == pt


def test_vector_ghash_mixed_sizes_share_tables(no_record_cache):
    # One instance alternating below/above the threshold keeps a single
    # running state machine; the vector tables must not leak between
    # calls or depend on build order.
    from repro.crypto import _numpy as _vec

    if not _vec.HAVE_NUMPY:
        pytest.skip("numpy unavailable; only the scalar path exists")
    key = bytes(16)
    vec_box = AESGCM(key)
    scalar_box = AESGCM(key)
    scalar_box._vtables = False
    for n, size in enumerate([5, 4096, 17, 2048, 3000, 0, 8192]):
        iv = n.to_bytes(12, "big")
        pt = bytes((i + n) & 0xFF for i in range(size))
        assert vec_box.seal(iv, pt) == scalar_box.seal(iv, pt)
