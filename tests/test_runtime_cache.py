"""The on-disk result cache: hits, misses, invalidation, manifests."""

import json
from dataclasses import dataclass

import pytest

from repro.runtime import ResultCache, run_scenario
from repro.runtime.scenario import Scenario, register, unregister


@dataclass
class _ToyParams:
    seed: int = 0
    value: int = 3


_BUILD_CALLS = []


def _toy_build(params):
    _BUILD_CALLS.append(params.seed)
    return {"doubled": params.value * 2}


@pytest.fixture
def toy_scenario():
    register(Scenario(
        name="_toy-cache",
        title="toy",
        params_type=_ToyParams,
        build=_toy_build,
        summarize=lambda artifact: artifact,
        events_of=lambda artifact: {"counters": {"toy.built": 1}},
    ))
    _BUILD_CALLS.clear()
    yield "_toy-cache"
    unregister("_toy-cache")


def test_cache_miss_then_hit(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    first = run_scenario(toy_scenario, seed=5, cache=cache)
    assert not first.cache_hit
    assert cache.misses == 1 and cache.hits == 0
    assert _BUILD_CALLS == [5]

    second = run_scenario(toy_scenario, seed=5, cache=cache)
    assert second.cache_hit
    assert cache.hits == 1
    assert _BUILD_CALLS == [5]  # no re-simulation
    assert second.identity() == first.identity()


def test_different_params_or_seed_miss(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    run_scenario(toy_scenario, seed=0, cache=cache)
    run_scenario(toy_scenario, seed=1, cache=cache)
    run_scenario(toy_scenario, seed=0, overrides={"value": 9}, cache=cache)
    assert cache.misses == 3 and cache.hits == 0
    assert _BUILD_CALLS == [0, 1, 0]


def test_code_change_invalidates(tmp_path, toy_scenario, monkeypatch):
    # The runner binds code_fingerprint by name; patch its reference.
    monkeypatch.setattr("repro.runtime.runner.code_fingerprint",
                        lambda: "aaaa000000000000")
    cache = ResultCache(tmp_path)
    run_scenario(toy_scenario, seed=0, cache=cache)
    assert run_scenario(toy_scenario, seed=0, cache=cache).cache_hit

    monkeypatch.setattr("repro.runtime.runner.code_fingerprint",
                        lambda: "bbbb000000000000")
    third = run_scenario(toy_scenario, seed=0, cache=cache)
    assert not third.cache_hit
    assert third.fingerprint == "bbbb000000000000"
    assert _BUILD_CALLS == [0, 0]


def test_use_cache_false_always_executes(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    run_scenario(toy_scenario, seed=0, cache=cache)
    result = run_scenario(toy_scenario, seed=0, cache=cache, use_cache=False)
    assert not result.cache_hit
    assert _BUILD_CALLS == [0, 0]
    # ...but it still refreshes the stored result.
    assert run_scenario(toy_scenario, seed=0, cache=cache).cache_hit


def test_manifest_written_next_to_result(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    result = run_scenario(toy_scenario, seed=7, cache=cache)
    key = cache.key_for(result.scenario, result.params, result.seed,
                        result.fingerprint)
    directory = cache.dir_for(result.scenario, key)
    manifest = json.loads((directory / "manifest.json").read_text())
    assert manifest["scenario"] == "_toy-cache"
    assert manifest["seed"] == 7
    assert manifest["params"] == {"value": 3}
    assert manifest["key"] == key
    assert manifest["fingerprint"] == result.fingerprint
    assert manifest["events"] == {"counters": {"toy.built": 1}}
    assert "wall_time" in manifest and "created" in manifest
    stored = json.loads((directory / "result.json").read_text())
    assert stored["payload"] == {"doubled": 6}


def test_corrupt_cache_entry_is_a_miss(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    result = run_scenario(toy_scenario, seed=0, cache=cache)
    key = cache.key_for(result.scenario, result.params, result.seed,
                        result.fingerprint)
    (cache.dir_for(result.scenario, key) / "result.json").write_text("not json")
    again = run_scenario(toy_scenario, seed=0, cache=cache)
    assert not again.cache_hit
    assert _BUILD_CALLS == [0, 0]


# ---------------------------------------------------------- concurrency


def _store_repeatedly(root, scenario, wall_time, start, iterations):
    # Child-process body (forked): hammer the same cache key.
    from repro.runtime import ResultCache, run_scenario

    cache = ResultCache(root)
    result = run_scenario(scenario, seed=0)
    result.wall_time = wall_time
    start.wait()
    for _ in range(iterations):
        cache.store(result)


def test_concurrent_same_key_stores_never_tear(tmp_path, toy_scenario):
    """Two processes storing the same key concurrently: a lockless
    reader must never see a torn/partial JSON file, and the final
    (result, manifest) pair must come from a single writer."""
    import multiprocessing
    import time as time_mod

    ctx = multiprocessing.get_context("fork")
    start = ctx.Event()
    writers = [
        ctx.Process(target=_store_repeatedly,
                    args=(str(tmp_path), toy_scenario, float(i + 1),
                          start, 40))
        for i in range(2)
    ]
    for writer in writers:
        writer.start()

    cache = ResultCache(tmp_path)
    probe = run_scenario(toy_scenario, seed=0)
    key = cache.key_for(probe.scenario, probe.params, probe.seed,
                        probe.fingerprint)
    directory = cache.dir_for(toy_scenario, key)

    start.set()
    deadline = time_mod.monotonic() + 60
    clean_reads = 0
    while any(writer.is_alive() for writer in writers):
        assert time_mod.monotonic() < deadline, "writers stuck"
        for name in (ResultCache.RESULT_FILE, ResultCache.MANIFEST_FILE):
            try:
                text = (directory / name).read_text()
            except OSError:
                continue  # not written yet
            json.loads(text)  # a torn file would raise ValueError
            clean_reads += 1
    for writer in writers:
        writer.join()
        assert writer.exitcode == 0

    stored = json.loads((directory / ResultCache.RESULT_FILE).read_text())
    manifest = json.loads((directory / ResultCache.MANIFEST_FILE).read_text())
    assert clean_reads > 0
    assert manifest["key"] == key
    assert manifest["wall_time"] in (1.0, 2.0)
    # The pair was written under one lock, by one process.
    assert manifest["wall_time"] == stored["wall_time"]
