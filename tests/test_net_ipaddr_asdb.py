"""IPv4 helpers and the AS database."""

import random

import pytest

from repro.net import (
    AS_TABLE,
    ASDatabase,
    PAPER_AS_COUNTS,
    in_cidr,
    int_to_ip,
    ip_to_int,
    lookup_asn,
    parse_cidr,
    random_ip_in,
)


def test_ip_roundtrip():
    for ip in ("0.0.0.0", "255.255.255.255", "10.1.2.3", "198.51.100.7"):
        assert int_to_ip(ip_to_int(ip)) == ip


def test_ip_to_int_known_value():
    assert ip_to_int("1.0.0.0") == 1 << 24
    assert ip_to_int("0.0.0.1") == 1


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""])
def test_ip_to_int_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_int_to_ip_range_checked():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(1 << 32)


def test_parse_cidr():
    base, prefix = parse_cidr("10.0.0.0/8")
    assert base == ip_to_int("10.0.0.0") and prefix == 8
    # Host bits are masked off.
    base, prefix = parse_cidr("10.1.2.3/8")
    assert base == ip_to_int("10.0.0.0")
    # Bare address = /32.
    assert parse_cidr("1.2.3.4") == (ip_to_int("1.2.3.4"), 32)


def test_parse_cidr_rejects_bad_prefix():
    with pytest.raises(ValueError):
        parse_cidr("1.2.3.4/33")


def test_in_cidr():
    assert in_cidr("192.168.1.7", "192.168.0.0/16")
    assert not in_cidr("192.169.0.1", "192.168.0.0/16")
    assert in_cidr("5.6.7.8", "0.0.0.0/0")


def test_random_ip_in_stays_inside():
    rng = random.Random(1)
    for _ in range(100):
        ip = random_ip_in("175.42.0.0/16", rng)
        assert in_cidr(ip, "175.42.0.0/16")


def test_lookup_asn_paper_table2_ips():
    # Table 2's heavy hitters resolve to the right ASes.
    assert lookup_asn("175.42.1.21") == 4837
    assert lookup_asn("223.166.74.207") == 17621
    assert lookup_asn("113.128.105.20") == 4134
    assert lookup_asn("112.80.138.231") == 4134
    assert lookup_asn("124.235.138.113") == 4837


def test_lookup_asn_unknown():
    assert lookup_asn("8.8.8.8") is None


def test_as_prefixes_disjoint():
    """Prefix sets must not overlap or lookups would be ambiguous."""
    seen = []
    for info in AS_TABLE:
        for prefix in info.prefixes:
            base, plen = parse_cidr(prefix)
            for other_base, other_plen, other in seen:
                short = min(plen, other_plen)
                mask = (0xFFFFFFFF << (32 - short)) & 0xFFFFFFFF
                assert (base & mask) != (other_base & mask), (prefix, other)
            seen.append((base, plen, prefix))


def test_asdb_sampling_weights():
    db = ASDatabase()
    rng = random.Random(2)
    counts = {}
    for _ in range(5000):
        asn = db.sample_asn(rng)
        counts[asn] = counts.get(asn, 0) + 1
    total_weight = sum(PAPER_AS_COUNTS.values())
    # The two big ASes get their paper share.
    for asn in (4837, 4134):
        expected = PAPER_AS_COUNTS[asn] / total_weight
        assert abs(counts.get(asn, 0) / 5000 - expected) < 0.05


def test_asdb_pinned_as():
    db = ASDatabase()
    rng = random.Random(3)
    for _ in range(20):
        ip = db.sample_ip(rng, asn=17622)
        assert lookup_asn(ip) == 17622


def test_asdb_rejects_unknown_asn_weights():
    with pytest.raises(ValueError):
        ASDatabase({99999: 1})


def test_asdb_info():
    info = ASDatabase().info(4134)
    assert "CHINANET" in info.name
