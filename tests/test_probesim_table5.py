"""Table 5: reactions to identical vs byte-changed replays."""

import pytest

from repro.gfw import ProbeType
from repro.probesim import ProberSimulator, ReactionKind


def battery(profile, method, seed=0, **kwargs):
    sim = ProberSimulator(profile, method, seed=seed, **kwargs)
    payload = sim.record_legitimate_payload()
    return sim, payload, sim.replay_battery(payload)


def test_libev_old_stream_identical_replay_rst():
    _, _, results = battery("ss-libev-3.1.3", "aes-256-ctr")
    assert results[ProbeType.R1].reaction == ReactionKind.RST


def test_libev_old_stream_byte_changed_mixed():
    """R2/R3/R5 change the IV -> random-probe-like reactions (R/T/F)."""
    reactions = set()
    for seed in range(8):
        _, _, results = battery("ss-libev-3.2.5", "aes-256-ctr", seed=seed)
        for t in (ProbeType.R2, ProbeType.R3, ProbeType.R5):
            reactions.add(results[t].reaction)
    assert ReactionKind.RST in reactions
    assert reactions <= {ReactionKind.RST, ReactionKind.TIMEOUT, ReactionKind.FINACK}


def test_libev_old_stream_r4_same_iv_hits_replay_filter():
    """R4 changes byte 16: within the payload for a 16-byte-IV cipher, so
    the IV is unchanged and the Bloom filter treats it as a replay."""
    _, _, results = battery("ss-libev-3.1.3", "aes-256-ctr")
    assert results[ProbeType.R4].reaction == ReactionKind.RST


def test_libev_old_aead_identical_and_changed_rst():
    _, _, results = battery("ss-libev-3.0.8", "aes-256-gcm")
    assert results[ProbeType.R1].reaction == ReactionKind.RST
    for t in (ProbeType.R2, ProbeType.R3, ProbeType.R4, ProbeType.R5):
        assert results[t].reaction == ReactionKind.RST


def test_libev_new_stream_identical_timeout():
    _, _, results = battery("ss-libev-3.3.1", "aes-128-ctr")
    assert results[ProbeType.R1].reaction == ReactionKind.TIMEOUT


def test_libev_new_stream_byte_changed_timeout_or_finack():
    reactions = set()
    for seed in range(6):
        _, _, results = battery("ss-libev-3.3.3", "aes-128-ctr", seed=seed)
        for t in (ProbeType.R2, ProbeType.R3, ProbeType.R5):
            reactions.add(results[t].reaction)
    assert ReactionKind.RST not in reactions
    assert ReactionKind.TIMEOUT in reactions


def test_libev_new_aead_all_timeout():
    _, _, results = battery("ss-libev-3.3.1", "chacha20-ietf-poly1305")
    for t in (ProbeType.R1, ProbeType.R2, ProbeType.R3, ProbeType.R4, ProbeType.R5):
        assert results[t].reaction == ReactionKind.TIMEOUT


def test_outline_identical_replay_returns_data():
    """No replay filter: Outline answers an identical replay with data."""
    _, _, results = battery("outline-1.0.7", "chacha20-ietf-poly1305")
    assert results[ProbeType.R1].reaction == ReactionKind.DATA
    assert results[ProbeType.R1].response_bytes > 0


def test_outline_byte_changed_timeout():
    _, _, results = battery("outline-1.0.8", "chacha20-ietf-poly1305")
    for t in (ProbeType.R2, ProbeType.R3, ProbeType.R4, ProbeType.R5):
        assert results[t].reaction == ReactionKind.TIMEOUT


def test_outline_106_byte_changed_rst():
    """Pre-fix Outline resets byte-changed replays (auth failure, >50 B)."""
    _, _, results = battery("outline-1.0.6", "chacha20-ietf-poly1305")
    assert results[ProbeType.R1].reaction == ReactionKind.DATA
    for t in (ProbeType.R2, ProbeType.R3, ProbeType.R4, ProbeType.R5):
        assert results[t].reaction == ReactionKind.RST


def test_outline_110_replay_defense_blocks_identical():
    """Outline v1.1.0 added replay protection: identical replays no longer
    draw data (§11, Responsible Disclosure)."""
    _, _, results = battery("outline-1.1.0", "chacha20-ietf-poly1305")
    assert results[ProbeType.R1].reaction != ReactionKind.DATA


def test_consistent_response_length_leaks_proxied_protocol():
    """§5.3: a consistent response length to the same replayed payload
    suggests the underlying protocol (e.g. a fixed HTTP response)."""
    sizes = set()
    for seed in (100, 200):
        sim, payload, _ = battery("outline-1.0.7", "chacha20-ietf-poly1305",
                                  seed=seed)
        result = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
        sizes.add(result.response_bytes)
    assert len(sizes) == 1  # same upstream response -> same encrypted length


def test_replay_after_server_restart_bypasses_bloom_filter():
    """§7.2: a nonce-only filter forgets across restarts; delayed replays
    then succeed. (The asymmetry motivating timed filters.)"""
    sim = ProberSimulator("ss-libev-3.3.1", "aes-256-gcm")
    payload = sim.record_legitimate_payload()
    before = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
    assert before.reaction == ReactionKind.TIMEOUT  # caught by the filter
    sim.server.restart()
    after = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
    assert after.reaction == ReactionKind.DATA  # filter state lost


def test_timed_filter_still_rejects_after_restart():
    sim = ProberSimulator("ss-libev-3.3.1", "aes-256-gcm",
                          timed_replay_window=120.0)
    payload = sim.record_legitimate_payload()
    sim.server.restart()
    # Advance beyond the freshness window before replaying.
    sim.sim.run(until=sim.sim.now + 600.0)
    result = sim.send_probe(sim.forge.replay(payload, ProbeType.R1))
    assert result.reaction != ReactionKind.DATA
