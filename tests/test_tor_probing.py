"""Per-protocol probing engine and the tor-probing scenario."""

import pytest

from repro.analysis import ProbeBlockDelays
from repro.gfw import behavior_kinds, build_behavior
from repro.gfw.prober import ProbeRecord, Reaction
from repro.gfw.probes import Probe, ProbeType
from repro.gfw.probing import ShadowsocksProbeBehavior, TorProbeBehavior
from repro.runtime import run_scenario

OVERRIDES = {"connections": 4, "interval": 60.0, "duration": 3600.0}


# --------------------------------------------------------- behavior registry


def test_builtin_behaviors_registered():
    assert {"shadowsocks", "tor"} <= set(behavior_kinds())


def test_build_behavior_from_bare_kind_and_mapping():
    sched = object()
    assert isinstance(build_behavior("shadowsocks", sched),
                      ShadowsocksProbeBehavior)
    tor = build_behavior({"kind": "tor", "batch_interval": 300.0}, sched)
    assert isinstance(tor, TorProbeBehavior)
    assert tor.batch_interval == 300.0


def test_behavior_spec_round_trips():
    sched = object()
    for kind in behavior_kinds():
        behavior = build_behavior(kind, sched)
        rebuilt = build_behavior(behavior.spec(), sched)
        assert rebuilt.spec() == behavior.spec()


def test_unknown_behavior_kind_raises():
    with pytest.raises(KeyError):
        build_behavior("no-such-playbook", object())


def _record(probe_type, reaction):
    return ProbeRecord(probe=Probe(probe_type, b"x"), server_ip="1.2.3.4",
                       server_port=443, src_ip="5.6.7.8", src_port=1234,
                       time_sent=0.0, tsval=0, process_name="p",
                       reaction=reaction)


def test_tor_confirmation_matrix():
    behavior = build_behavior("tor", object())
    # VERSIONS reply or an answered garbage block confirms a bridge.
    assert behavior._confirms(_record(ProbeType.TORH, Reaction.DATA))
    assert behavior._confirms(_record(ProbeType.GARBAGE, Reaction.DATA))
    # Timeouts and closes do not; neither does an answered replay.
    assert not behavior._confirms(_record(ProbeType.TORH, Reaction.TIMEOUT))
    assert not behavior._confirms(_record(ProbeType.GARBAGE, Reaction.FINACK))
    assert not behavior._confirms(_record(ProbeType.R1, Reaction.DATA))


# ------------------------------------------------------ delay analyzer unit


def _flag(ip, t):
    return {"kind": "flow.flagged", "responder_ip": ip, "responder_port": 443,
            "time": t}


def _probe_ev(ip, t):
    return {"kind": "probe", "server_ip": ip, "server_port": 443, "time": t}


def _block(ip, t):
    return {"kind": "block", "ip": ip, "port": 443, "time": t,
            "unblock_time": None}


def test_probe_block_delays_first_occurrence_only():
    a = ProbeBlockDelays()
    for ev in (_flag("a", 10.0), _flag("a", 5.0), _probe_ev("a", 20.0),
               _probe_ev("a", 12.0), _block("a", 900.0), _block("a", 40.0)):
        a.observe(ev)
    out = a.finalize()
    assert out["endpoints"]["a"] == {"flagged_at": 5.0, "first_probe_at": 12.0,
                                     "blocked_at": 40.0}
    assert out["flag_to_probe"]["mean"] == 7.0
    assert out["probe_to_block"]["mean"] == 28.0
    assert out["flag_to_block"]["mean"] == 35.0


def test_probe_block_delays_merge_is_order_insensitive():
    events = [_flag("a", 1.0), _probe_ev("a", 3.0), _block("a", 9.0),
              _flag("b", 2.0), _probe_ev("b", 7.0)]
    one = ProbeBlockDelays()
    for ev in events:
        one.observe(ev)
    left, right = ProbeBlockDelays(), ProbeBlockDelays()
    for i, ev in enumerate(events):
        (left if i % 2 else right).observe(ev)
    left.merge(right)
    assert left.finalize() == one.finalize()


def test_probe_block_delays_state_round_trip():
    a = ProbeBlockDelays()
    for ev in (_flag("a", 1.0), _probe_ev("a", 2.0), _block("a", 3.0)):
        a.observe(ev)
    b = ProbeBlockDelays()
    b.load_state(a.state_dict())
    assert b.finalize() == a.finalize()


# ---------------------------------------------------------- scenario smoke


def test_tor_probing_scenario_grades_the_transports():
    result = run_scenario("tor-probing", seed=0, overrides=OVERRIDES,
                          use_cache=False)
    by_label = {b["label"]: b for b in result.payload["bridges"]}
    assert set(by_label) == {"vanilla", "obfs3", "obfs4"}
    # Winter & Lindskog: vanilla answers the forged handshake, obfs3
    # answers the garbage block, obfs4 answers nothing -> never blocked.
    assert by_label["vanilla"]["blocked"]
    assert by_label["obfs3"]["blocked"]
    assert not by_label["obfs4"]["blocked"]
    assert by_label["obfs4"]["probes"] > 0
    # Probe-to-block delays cluster at the batch boundary, not at zero.
    assert result.payload["probe_to_block"]["count"] == 2
    assert result.payload["probe_to_block"]["min"] > 60.0
    assert result.payload["confirmed"] == 2


def test_tor_probing_protocol_override_rejects_unknown_kind():
    with pytest.raises(KeyError):
        run_scenario("tor-probing", seed=0,
                     overrides=dict(OVERRIDES, protocol="nope"),
                     use_cache=False)
