"""ReactionCell/Row machinery and transition summaries."""

from collections import Counter

import pytest

from repro.probesim import (
    ReactionCell,
    ReactionKind,
    ReactionRow,
    build_replay_table,
    classify_reaction,
    summarize_transitions,
)


def test_cell_fractions_and_dominant():
    cell = ReactionCell(10)
    for reaction in ("RST", "RST", "RST", "TIMEOUT"):
        cell.add(reaction)
    assert cell.total == 4
    assert cell.fraction("RST") == 0.75
    assert cell.dominant == "RST"


def test_cell_label_single_and_mixed():
    cell = ReactionCell(5)
    cell.add("TIMEOUT")
    assert cell.label() == "TIMEOUT"
    cell.add("RST")
    assert "or" in cell.label()
    assert ReactionCell(1).label() == "-"


def test_row_first_length_with():
    row = ReactionRow("p", "m", 16)
    for length, reaction in ((8, "TIMEOUT"), (17, "RST"), (20, "RST")):
        row.cell(length).add(reaction)
    assert row.first_length_with("RST") == 17
    assert row.first_length_with("FIN/ACK") is None


def test_summarize_transitions_compresses():
    row = ReactionRow("p", "m", 8)
    for length, reaction in ((1, "TIMEOUT"), (5, "TIMEOUT"), (9, "RST"),
                             (12, "RST"), (15, "FIN/ACK")):
        row.cell(length).add(reaction)
    assert summarize_transitions(row) == [(1, "TIMEOUT"), (9, "RST"),
                                          (15, "FIN/ACK")]


def test_classify_reaction_prober_patience():
    """Events after the prober's timeout are invisible to it."""
    events = [(15.0, "rst")]
    reaction, elapsed = classify_reaction(events, start=0.0, prober_timeout=10.0)
    assert reaction == ReactionKind.TIMEOUT
    assert elapsed == 10.0


def test_classify_reaction_first_event_wins():
    events = [(1.0, "data:5"), (2.0, "fin")]
    reaction, elapsed = classify_reaction(events, start=0.0, prober_timeout=10.0)
    assert reaction == ReactionKind.DATA
    assert elapsed == 1.0


def test_classify_reaction_fin_vs_rst_order():
    events = [(0.5, "fin"), (0.6, "rst")]
    reaction, _ = classify_reaction(events, start=0.0, prober_timeout=10.0)
    assert reaction == ReactionKind.FINACK


def test_build_replay_table_small():
    table = build_replay_table([("outline-1.0.7", "chacha20-ietf-poly1305")],
                               trials=1, seed=9)
    reactions = table[("outline-1.0.7", "chacha20-ietf-poly1305")]
    assert isinstance(reactions["identical"], Counter)
    assert reactions["identical"][ReactionKind.DATA] == 1
    assert sum(reactions["byte-changed"].values()) == 4  # R2-R5
