"""Workload generators: HTTP/TLS shapes, sinks, random-data clients."""

import random

import pytest

from repro.gfw import shannon_entropy
from repro.net import Host, Network, Simulator
from repro.workloads import (
    RandomDataClient,
    RespondingServer,
    SITES,
    SinkServer,
    alphabet_size_for_entropy,
    http_get_request,
    payload_with_entropy,
    site_request,
    tls_client_hello,
)


def test_http_request_is_plausible():
    rng = random.Random(1)
    req = http_get_request("example.com", rng)
    assert req.startswith(b"GET /")
    assert b"Host: example.com\r\n" in req
    assert req.endswith(b"\r\n\r\n")
    assert 4.0 < shannon_entropy(req) < 6.0


def test_http_request_custom_path():
    req = http_get_request("x.org", random.Random(2), path="/abc")
    assert req.startswith(b"GET /abc HTTP/1.1")


def test_tls_hello_structure():
    rng = random.Random(3)
    hello = tls_client_hello("www.wikipedia.org", rng)
    assert hello[0] == 0x16  # handshake record
    assert hello[1:3] == b"\x03\x01"
    record_len = int.from_bytes(hello[3:5], "big")
    assert len(hello) == 5 + record_len
    assert b"www.wikipedia.org" in hello  # SNI carries the name
    assert 200 <= len(hello) <= 700


def test_tls_hello_lengths_vary():
    rng = random.Random(4)
    lengths = {len(tls_client_hello("a.com", rng)) for _ in range(30)}
    assert len(lengths) > 10


def test_site_request_mixes_protocols():
    rng = random.Random(5)
    kinds = set()
    for _ in range(50):
        payload = site_request("example.com", rng)
        kinds.add("tls" if payload[0] == 0x16 else "http")
    assert kinds == {"tls", "http"}


def test_alphabet_size_for_entropy():
    assert alphabet_size_for_entropy(0.0) == 1
    assert alphabet_size_for_entropy(8.0) == 256
    assert alphabet_size_for_entropy(3.0) == 8
    with pytest.raises(ValueError):
        alphabet_size_for_entropy(9.0)


def test_payload_with_entropy_negative_length():
    with pytest.raises(ValueError):
        payload_with_entropy(-1, 4.0, random.Random(6))


def test_payload_with_entropy_zero_is_constant():
    payload = payload_with_entropy(100, 0.0, random.Random(7))
    assert len(set(payload)) == 1


def make_world():
    sim = Simulator()
    net = Network(sim)
    server_host = Host(sim, net, "10.0.0.2", "server")
    client_host = Host(sim, net, "10.0.0.1", "client")
    prober_host = Host(sim, net, "10.0.0.3", "prober")
    return sim, server_host, client_host, prober_host


def test_sink_server_never_responds_and_reaps():
    sim, server_host, client_host, _ = make_world()
    sink = SinkServer(server_host, 9000)
    conn = client_host.connect("10.0.0.2", 9000)
    got = []
    conn.on_data = got.append
    fin = []
    conn.on_remote_fin = lambda: fin.append(True)
    conn.on_connected = lambda: conn.send(b"hello sink")
    sim.run(until=29)
    assert sink.connections_accepted == 1
    assert sink.bytes_received == 10
    assert not got and not fin
    sim.run(until=35)
    assert fin  # reaped at 30 s


def test_responding_server_answers_probers_only():
    sim, server_host, client_host, prober_host = make_world()
    server = RespondingServer(server_host, 9000, ["10.0.0.1"],
                              rng=random.Random(8))
    own = client_host.connect("10.0.0.2", 9000)
    own_data = []
    own.on_data = own_data.append
    own.on_connected = lambda: own.send(b"client payload")
    probe = prober_host.connect("10.0.0.2", 9000)
    probe_data = []
    probe.on_data = probe_data.append
    probe.on_connected = lambda: probe.send(b"probe payload")
    sim.run(until=10)
    assert not own_data
    assert probe_data and 1 <= len(probe_data[0]) <= 1400
    assert server.prober_responses == 1


def test_random_data_client_length_and_entropy():
    sim, server_host, client_host, _ = make_world()
    SinkServer(server_host, 9000)
    client = RandomDataClient(client_host, "10.0.0.2", 9000,
                              length_range=(500, 500),
                              entropy_range=(3.0, 3.0),
                              rng=random.Random(9))
    client.run_schedule(5, 1.0)
    sim.run(until=60)
    assert len(client.sent_payloads) == 5
    for _, payload in client.sent_payloads:
        assert len(payload) == 500
        assert abs(shannon_entropy(payload) - 3.0) < 0.4


def test_random_data_client_on_send_hook():
    sim, server_host, client_host, _ = make_world()
    SinkServer(server_host, 9000)
    seen = []
    client = RandomDataClient(client_host, "10.0.0.2", 9000,
                              rng=random.Random(10))
    client.on_send = seen.append
    client.run_schedule(3, 1.0)
    sim.run(until=30)
    assert len(seen) == 3
