"""Passive detector: entropy and length features (§4.2)."""

import random

import pytest

from repro.gfw import DetectorConfig, PassiveDetector, shannon_entropy
from repro.workloads import payload_with_entropy, random_payload


def test_entropy_empty():
    assert shannon_entropy(b"") == 0.0


def test_entropy_constant():
    assert shannon_entropy(b"\x00" * 100) == 0.0


def test_entropy_two_symbols():
    assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)


def test_entropy_uniform_random_near_8():
    rng = random.Random(7)
    data = random_payload(65536, rng)
    assert shannon_entropy(data) > 7.95


def test_entropy_targeted_payloads():
    rng = random.Random(8)
    for target in (1.0, 2.0, 3.0, 5.0, 7.0):
        payload = payload_with_entropy(8000, target, rng)
        assert shannon_entropy(payload) == pytest.approx(target, abs=0.15)


def test_detector_prefers_core_lengths():
    det = PassiveDetector()
    # 450 has remainder 2 -> the favoured remainder in band3.
    assert det.length_weight(450) > det.length_weight(50)
    assert det.length_weight(450) > det.length_weight(1500)


def test_detector_remainder_9_favoured_in_band1():
    det = PassiveDetector()
    # 169 % 16 == 9; 170 % 16 == 10.
    assert det.length_weight(169) > 10 * det.length_weight(170)


def test_detector_remainder_2_favoured_in_band3():
    det = PassiveDetector()
    # 402 % 16 == 2; 403 % 16 == 3.
    assert det.length_weight(402) > 50 * det.length_weight(403)


def test_detector_band2_mixes_remainders():
    det = PassiveDetector()
    w9 = det.length_weight(265)   # 265 % 16 == 9
    w2 = det.length_weight(274)   # 274 % 16 == 2
    w_other = det.length_weight(276)
    assert w9 > w_other and w2 > w_other
    assert 0.5 < w2 / w9 < 1.0


def test_detector_entropy_ramp_factor_four():
    """Entropy 7.2 is ~4x as likely to be flagged as entropy 3.0 (Fig 9)."""
    det = PassiveDetector()
    ratio = det.entropy_weight(7.2) / det.entropy_weight(3.0)
    assert ratio == pytest.approx(4.0, rel=0.05)


def test_detector_low_entropy_still_possible():
    det = PassiveDetector()
    assert det.entropy_weight(0.5) > 0.0


def test_detector_flag_probability_monotone_in_entropy():
    det = PassiveDetector()
    rng = random.Random(9)
    # 450 % 16 == 2: a favoured length, isolating the entropy factor.
    low = payload_with_entropy(450, 2.0, rng)
    high = random_payload(450, rng)
    assert det.flag_probability(high) > det.flag_probability(low)


def test_detector_empty_payload_never_flagged():
    assert PassiveDetector().flag_probability(b"") == 0.0


def test_detector_ablation_knobs():
    no_len = PassiveDetector(DetectorConfig(length_filter=False))
    assert no_len.length_weight(3) == 1.0
    no_ent = PassiveDetector(DetectorConfig(entropy_filter=False))
    assert no_ent.entropy_weight(0.1) == 1.0


def test_inspect_sampling_rate():
    """Flag rate over many samples matches flag_probability."""
    det = PassiveDetector(DetectorConfig(base_rate=0.5))
    rng = random.Random(10)
    payload = random_payload(450, rng)
    p = det.flag_probability(payload)
    hits = sum(det.inspect(payload, rng) for _ in range(4000))
    assert hits / 4000 == pytest.approx(p, rel=0.15)


def test_band_fields_are_real_dataclass_fields():
    import dataclasses

    names = {f.name for f in dataclasses.fields(DetectorConfig)}
    assert {"band1", "band2", "band3"} <= names
    # Per-instance, not shared class attributes.
    a = DetectorConfig()
    b = DetectorConfig(band1=(100, 120))
    assert a.band1 == (168, 263)
    assert b.band1 == (100, 120)


def test_overriding_bands_changes_flag_probability():
    rng = random.Random(0)
    payload = random_payload(600, rng)  # remainder 8, inside default band3
    base = PassiveDetector(DetectorConfig(base_rate=1.0))
    moved = PassiveDetector(DetectorConfig(base_rate=1.0, band3=(384, 500)))
    # 600 leaves band3: the off-remainder penalty (0.0028) becomes the
    # out-of-band default weight (0.4).
    assert moved.flag_probability(payload) > base.flag_probability(payload)
    assert base.flag_probability(payload) == pytest.approx(
        PassiveDetector(DetectorConfig(base_rate=1.0)).flag_probability(payload))
