"""GreatFirewall middlebox mechanics: borders, flows, self-exclusion."""

import random

import pytest

from repro.experiments.common import CHINA_CIDRS, build_world
from repro.gfw import DetectorConfig, GreatFirewall
from repro.net import Flags, Host, Network, Segment, Simulator

AGGRESSIVE = DetectorConfig(base_rate=1.0, length_filter=False,
                            entropy_filter=False)


def make_gfw(**kwargs):
    sim = Simulator()
    net = Network(sim)
    gfw = GreatFirewall(sim, net, ["192.0.2.0/24"],
                        detector_config=kwargs.pop("detector_config", AGGRESSIVE),
                        **kwargs)
    return sim, net, gfw


def test_is_inside_cached_lookup():
    sim, net, gfw = make_gfw()
    assert gfw.is_inside("192.0.2.55")
    assert not gfw.is_inside("198.51.100.1")
    # Second call hits the cache (same result).
    assert gfw.is_inside("192.0.2.55")
    assert "192.0.2.55" in gfw._inside_cache


def test_crosses_border():
    sim, net, gfw = make_gfw()
    cross = Segment(src_ip="192.0.2.1", dst_ip="198.51.100.1", src_port=1,
                    dst_port=2, flags=Flags.SYN)
    inside = Segment(src_ip="192.0.2.1", dst_ip="192.0.2.2", src_port=1,
                     dst_port=2, flags=Flags.SYN)
    outside = Segment(src_ip="198.51.100.1", dst_ip="198.51.100.2", src_port=1,
                      dst_port=2, flags=Flags.SYN)
    assert gfw.crosses_border(cross)
    assert not gfw.crosses_border(inside)
    assert not gfw.crosses_border(outside)


def test_domestic_traffic_not_inspected():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "192.0.2.2")
    b.listen(80, lambda c: None)
    conn = a.connect("192.0.2.2", 80)
    conn.on_connected = lambda: conn.send(bytes(300))
    sim.run(until=5)
    assert gfw.inspected_connections == 0
    assert gfw.flagged_connections == 0


def test_border_traffic_inspected_and_flagged():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(bytes(300))
    sim.run(until=5)
    assert gfw.inspected_connections == 1
    assert gfw.flagged_connections == 1


def test_only_first_data_packet_matters():
    sim, net, gfw = make_gfw()
    flags = []
    gfw.on_flag = lambda flow, payload: flags.append(payload)
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(b"first")
    sim.schedule(1.0, conn.send, b"second")
    sim.run(until=5)
    assert flags == [b"first"]


def test_flow_state_reclaimed_on_close():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: setattr(c, "on_remote_fin", c.close))
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: (conn.send(b"data"), conn.close())
    sim.run(until=10)
    assert len(gfw.flows) == 0


def test_fleet_traffic_excluded_from_detection():
    sim, net, gfw = make_gfw()
    server = Host(sim, net, "198.51.100.1")
    server.listen(8388, lambda c: None)
    # A probe connection from the fleet's own address space.
    ip = gfw.fleet.pick_ip()
    conn = gfw.fleet_host.connect("198.51.100.1", 8388, src_ip=ip)
    conn.on_connected = lambda: conn.send(bytes(400))
    sim.run(until=5)
    assert gfw.inspected_connections == 0
    assert gfw.flagged_connections == 0


def test_responder_data_marks_serves_data():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(b"reply")))
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(bytes(200))
    sim.run(until=5)
    state = gfw.scheduler.state_for("198.51.100.1", 80)
    assert state.serves_data


def test_capture_disabled_by_default():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    sim.run(until=5)
    assert len(gfw.capture) == 0
    gfw.capture.enabled = True
    conn.send(b"x")
    sim.run(until=6)
    assert len(gfw.capture) > 0


def test_china_cidrs_cover_fleet_and_clients():
    from repro.net import in_cidr

    sim = Simulator()
    net = Network(sim)
    gfw = GreatFirewall(sim, net, CHINA_CIDRS)
    assert gfw.is_inside("100.64.0.1")      # fleet anchor
    assert gfw.is_inside("192.0.2.10")      # Beijing clients
    for _ in range(50):
        assert gfw.is_inside(gfw.fleet.pick_ip())


def test_sensitive_periods_2019_constants():
    from repro.gfw.blocking import SENSITIVE_PERIODS_2019

    assert len(SENSITIVE_PERIODS_2019) == 3
    for start, end in SENSITIVE_PERIODS_2019:
        assert 0 < start < end < 366 * 86400
