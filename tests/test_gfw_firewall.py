"""GreatFirewall middlebox mechanics: borders, flows, self-exclusion."""

import random

import pytest

from repro.runtime.topology import CHINA_CIDRS, build_world
from repro.gfw import DetectorConfig, GreatFirewall
from repro.net import Flags, Host, Network, Segment, Simulator

AGGRESSIVE = DetectorConfig(base_rate=1.0, length_filter=False,
                            entropy_filter=False)


def make_gfw(**kwargs):
    sim = Simulator()
    net = Network(sim)
    gfw = GreatFirewall(sim, net, ["192.0.2.0/24"],
                        detector_config=kwargs.pop("detector_config", AGGRESSIVE),
                        **kwargs)
    return sim, net, gfw


def test_is_inside_cached_lookup():
    sim, net, gfw = make_gfw()
    assert gfw.is_inside("192.0.2.55")
    assert not gfw.is_inside("198.51.100.1")
    # Second call hits the cache (same result).
    assert gfw.is_inside("192.0.2.55")
    assert "192.0.2.55" in gfw._inside_cache


def test_crosses_border():
    sim, net, gfw = make_gfw()
    cross = Segment(src_ip="192.0.2.1", dst_ip="198.51.100.1", src_port=1,
                    dst_port=2, flags=Flags.SYN)
    inside = Segment(src_ip="192.0.2.1", dst_ip="192.0.2.2", src_port=1,
                     dst_port=2, flags=Flags.SYN)
    outside = Segment(src_ip="198.51.100.1", dst_ip="198.51.100.2", src_port=1,
                      dst_port=2, flags=Flags.SYN)
    assert gfw.crosses_border(cross)
    assert not gfw.crosses_border(inside)
    assert not gfw.crosses_border(outside)


def test_domestic_traffic_not_inspected():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "192.0.2.2")
    b.listen(80, lambda c: None)
    conn = a.connect("192.0.2.2", 80)
    conn.on_connected = lambda: conn.send(bytes(300))
    sim.run(until=5)
    assert gfw.inspected_connections == 0
    assert gfw.flagged_connections == 0


def test_border_traffic_inspected_and_flagged():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(bytes(300))
    sim.run(until=5)
    assert gfw.inspected_connections == 1
    assert gfw.flagged_connections == 1


def test_only_first_data_packet_matters():
    sim, net, gfw = make_gfw()
    flags = []
    gfw.on_flag = lambda flow, payload: flags.append(payload)
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(b"first")
    sim.schedule(1.0, conn.send, b"second")
    sim.run(until=5)
    assert flags == [b"first"]


def test_flow_state_reclaimed_on_close():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: setattr(c, "on_remote_fin", c.close))
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: (conn.send(b"data"), conn.close())
    sim.run(until=10)
    assert len(gfw.flows) == 0


def test_fleet_traffic_excluded_from_detection():
    sim, net, gfw = make_gfw()
    server = Host(sim, net, "198.51.100.1")
    server.listen(8388, lambda c: None)
    # A probe connection from the fleet's own address space.
    ip = gfw.fleet.pick_ip()
    conn = gfw.fleet_host.connect("198.51.100.1", 8388, src_ip=ip)
    conn.on_connected = lambda: conn.send(bytes(400))
    sim.run(until=5)
    assert gfw.inspected_connections == 0
    assert gfw.flagged_connections == 0


def test_responder_data_marks_serves_data():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: setattr(c, "on_data", lambda d: c.send(b"reply")))
    conn = a.connect("198.51.100.1", 80)
    conn.on_connected = lambda: conn.send(bytes(200))
    sim.run(until=5)
    state = gfw.scheduler.state_for("198.51.100.1", 80)
    assert state.serves_data


def test_capture_disabled_by_default():
    sim, net, gfw = make_gfw()
    a = Host(sim, net, "192.0.2.1")
    b = Host(sim, net, "198.51.100.1")
    b.listen(80, lambda c: None)
    conn = a.connect("198.51.100.1", 80)
    sim.run(until=5)
    assert len(gfw.capture) == 0
    gfw.capture.enabled = True
    conn.send(b"x")
    sim.run(until=6)
    assert len(gfw.capture) > 0


def test_china_cidrs_cover_fleet_and_clients():
    from repro.net import in_cidr

    sim = Simulator()
    net = Network(sim)
    gfw = GreatFirewall(sim, net, CHINA_CIDRS)
    assert gfw.is_inside("100.64.0.1")      # fleet anchor
    assert gfw.is_inside("192.0.2.10")      # Beijing clients
    for _ in range(50):
        assert gfw.is_inside(gfw.fleet.pick_ip())


def test_sensitive_periods_2019_constants():
    from repro.gfw.blocking import SENSITIVE_PERIODS_2019

    assert len(SENSITIVE_PERIODS_2019) == 3
    for start, end in SENSITIVE_PERIODS_2019:
        assert 0 < start < end < 366 * 86400


# ------------------------------------------------- flow-table hygiene


def _seg(sport, flags, payload=b"", src="192.0.2.1", dst="198.51.100.1"):
    return Segment(src_ip=src, dst_ip=dst, src_port=sport, dst_port=80,
                   flags=flags, payload=payload)


def test_idle_flows_evicted_after_timeout():
    sim, net, gfw = make_gfw(flow_idle_timeout=60.0)
    gfw.process(_seg(5000, Flags.SYN), net)
    assert len(gfw.flows) == 1
    # A half-open flow (no FIN/RST ever) goes idle; the amortized sweep
    # reclaims it on a later tracked segment.
    sim.now = 1000.0
    gfw._track_calls = gfw.EVICTION_SWEEP_INTERVAL - 1
    gfw.process(_seg(5001, Flags.SYN, src="192.0.2.2"), net)
    assert len(gfw.flows) == 1  # only the fresh flow remains
    assert _seg(5001, Flags.SYN, src="192.0.2.2").conn_key() in gfw.flows
    assert gfw.evicted_flows == 1
    assert sim.bus.count("gfw.flow.evicted") == 1


def test_no_eviction_without_timeout_by_default():
    sim, net, gfw = make_gfw()
    assert gfw.flow_idle_timeout is None
    gfw.process(_seg(5000, Flags.SYN), net)
    sim.now = 10 * 86400.0
    gfw._track_calls = gfw.EVICTION_SWEEP_INTERVAL - 1
    gfw.process(_seg(5001, Flags.SYN, src="192.0.2.2"), net)
    assert len(gfw.flows) == 2
    assert gfw.evicted_flows == 0


def test_flow_count_cap_evicts_oldest_quartile():
    sim, net, gfw = make_gfw(max_flows=8)
    for i in range(8):
        sim.now = float(i)
        gfw.process(_seg(5000 + i, Flags.SYN), net)
    assert len(gfw.flows) == 8
    sim.now = 99.0
    gfw.process(_seg(6000, Flags.SYN), net)
    assert len(gfw.flows) == 7  # 8 - 2 evicted + 1 new
    assert gfw.evicted_flows == 2
    assert sim.bus.count("gfw.flow.evicted") == 2
    keys = set(gfw.flows)
    assert _seg(5000, Flags.SYN).conn_key() not in keys  # oldest gone
    assert _seg(5001, Flags.SYN).conn_key() not in keys
    assert _seg(6000, Flags.SYN).conn_key() in keys


def test_inside_cache_bounded():
    sim, net, gfw = make_gfw(inside_cache_max=10)
    for i in range(25):
        gfw.is_inside(f"198.51.{i}.1")
    assert len(gfw._inside_cache) <= 10
    assert sim.bus.count("gfw.cache.inside_cleared") >= 1
    # Correctness is unaffected by the reset.
    assert gfw.is_inside("192.0.2.5")
    assert not gfw.is_inside("198.51.0.1")


# -------------------------------------- retransmission hardening


def test_retransmitted_syn_on_live_flow_not_recounted():
    from repro.net import Impairment

    sim, net, gfw = make_gfw()
    net.set_default_impairment(Impairment(loss=0.5))
    gfw.process(_seg(5000, Flags.SYN), net)
    gfw.process(_seg(5000, Flags.SYN), net)  # retransmitted SYN
    assert gfw.inspected_connections == 1
    assert len(gfw.flows) == 1
    assert sim.bus.count("gfw.flow.opened") == 1
    assert sim.bus.count("gfw.flow.syn.retransmit") == 1


def test_replayed_feature_packet_not_double_flagged():
    sim, net, gfw = make_gfw()
    data = bytes(range(256)) + bytes(44)  # 300 bytes
    gfw.process(_seg(5000, Flags.SYN), net)
    gfw.process(_seg(5000, Flags.PSH | Flags.ACK, payload=data), net)
    assert gfw.flagged_connections == 1
    gfw.process(_seg(5000, Flags.FIN | Flags.ACK), net)
    assert len(gfw.flows) == 0
    # A retransmitted SYN re-creates the flow entry after teardown and
    # the feature packet arrives again: one connection, one flag.
    gfw.process(_seg(5000, Flags.SYN), net)
    gfw.process(_seg(5000, Flags.PSH | Flags.ACK, payload=data), net)
    assert gfw.flagged_connections == 1
    assert sim.bus.count("gfw.conn.flagged") == 1
    assert sim.bus.count("gfw.conn.reflag.suppressed") == 1


def test_reflag_allowed_after_dedup_window():
    sim, net, gfw = make_gfw()
    data = bytes(range(256)) + bytes(44)
    gfw.process(_seg(5000, Flags.SYN), net)
    gfw.process(_seg(5000, Flags.PSH | Flags.ACK, payload=data), net)
    gfw.process(_seg(5000, Flags.FIN | Flags.ACK), net)
    # Well past the dedup window this is a genuinely new connection on a
    # recycled ephemeral port.
    sim.now = gfw.flag_dedup_window + 1.0
    gfw.process(_seg(5000, Flags.SYN), net)
    gfw.process(_seg(5000, Flags.PSH | Flags.ACK, payload=data), net)
    assert gfw.flagged_connections == 2
