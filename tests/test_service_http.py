"""The control plane over real HTTP: jobs, SSE records, metrics, cache.

Each test talks to an in-process :class:`ControlPlane` (see
``conftest.py``) through the blocking :class:`ServiceClient`, exercising
the same loop, parser, and worker pool as ``python -m repro serve``.
"""

import pytest

from repro.service import ServiceError

# Small enough to finish in well under a second, large enough to flag
# flows and send probes — i.e. to emit records worth streaming.
QUICKSTART = {"scenario": "quickstart", "overrides": {"connections": 8}}


def test_index_and_healthz(service):
    _, client = service
    assert client.healthz() == {"status": "ok"}
    info = client.info()
    assert info["service"] == "repro-control-plane"
    assert "quickstart" in info["scenarios"]
    assert "POST /jobs" in info["endpoints"]


def test_submit_runs_to_done_with_result(service):
    _, client = service
    job = client.submit(QUICKSTART)
    assert job["state"] in ("pending", "running")
    assert job["id"].startswith("j")
    done = client.wait(job["id"])
    assert done["state"] == "done"
    assert done["records"]["forwarded"] > 0
    merged = done["result"]
    assert merged["scenario"] == "quickstart"
    assert merged["params"]["connections"] == 8
    assert merged["runs"][0]["payload"]["probes"] > 0
    listed = {doc["id"] for doc in client.jobs()}
    assert job["id"] in listed


def test_records_stream_live_then_end(service):
    _, client = service
    job = client.submit(QUICKSTART)
    events = list(client.records(job["id"]))
    names = [name for name, _ in events]
    assert names[-1] == "end"
    records = [data for name, data in events if name == "record"]
    assert records, "no records streamed"
    kinds = {record["kind"] for record in records}
    assert kinds & {"flow.flagged", "probe", "probe.result", "verdict"}
    end = events[-1][1]
    assert end["state"] == "done"
    assert end["streamed"] == len(records)
    assert end["dropped"] == 0
    # The job doc agrees with the stream accounting.
    assert client.wait(job["id"])["records"]["forwarded"] == len(records)


def test_late_subscriber_gets_replay(service):
    _, client = service
    job = client.submit(QUICKSTART)
    client.wait(job["id"])  # job fully finished before we subscribe
    events = list(client.records(job["id"]))
    assert [name for name, _ in events][-1] == "end"
    assert sum(1 for name, _ in events if name == "record") > 0


def test_repeat_submission_hits_shared_cache(service):
    _, client = service
    first = client.submit(QUICKSTART)
    done_first = client.wait(first["id"])
    assert done_first["cache_hits"] == 0
    second = client.submit(QUICKSTART)
    done_second = client.wait(second["id"])
    assert done_second["cache_hits"] == 1
    assert done_second["result"] == done_first["result"]
    metrics = client.metrics()
    assert "repro_cache_hits_total 1" in metrics
    assert 'repro_jobs_total{state="done"} 2' in metrics
    assert 'repro_http_requests_total{route="jobs.submit",status="202"} 2' \
        in metrics


def test_unknown_scenario_fails_cleanly(service):
    _, client = service
    job = client.submit({"scenario": "no-such-scenario"})
    done = client.wait(job["id"], raise_on_failure=False)
    assert done["state"] == "failed"
    assert "no-such-scenario" in done["error"]


@pytest.mark.parametrize("bad_body", [
    {"overrides": {"connections": 8}},            # missing scenario
    {"scenario": "quickstart", "sedes": 2},       # typo'd key
    {"scenario": "quickstart", "seeds": 0},       # invalid sweep
])
def test_malformed_spec_is_rejected_with_400(service, bad_body):
    _, client = service
    with pytest.raises(ServiceError) as excinfo:
        client.submit(bad_body)
    assert excinfo.value.status == 400


def test_unknown_job_and_route_return_404(service):
    _, client = service
    for method, path in (("GET", "/jobs/nope"), ("DELETE", "/jobs/nope"),
                         ("GET", "/jobs/nope/records"), ("GET", "/bogus")):
        status, _ = client._request(method, path)
        assert status == 404, f"{method} {path} -> {status}"


def test_cancel_pending_job_never_runs(service_factory):
    # One worker: the first (slower) job occupies it, the second stays
    # queued and must cancel exactly — state cancelled, no result.
    _, client = service_factory(workers=1)
    slow = client.submit({"scenario": "quickstart",
                          "overrides": {"connections": 300}})
    queued = client.submit(QUICKSTART)
    cancelled = client.cancel(queued["id"])
    assert cancelled["state"] == "cancelled"
    done = client.wait(queued["id"], raise_on_failure=False)
    assert done["state"] == "cancelled"
    assert done.get("result") is None
    # The occupying job is unaffected.
    assert client.wait(slow["id"])["state"] == "done"
    metrics = client.metrics()
    assert 'repro_jobs_total{state="cancelled"} 1' in metrics
    assert 'repro_jobs_total{state="done"} 1' in metrics


def test_queue_full_returns_503(service_factory):
    _, client = service_factory(workers=1, queue_size=1)
    client.submit({"scenario": "quickstart",
                   "overrides": {"connections": 300}})
    accepted = [client.submit(QUICKSTART)]  # sits in the queue
    with pytest.raises(ServiceError) as excinfo:
        for _ in range(8):  # the dispatcher may drain one slot
            accepted.append(client.submit(QUICKSTART))
    assert excinfo.value.status == 503
    for job in accepted:
        client.wait(job["id"], raise_on_failure=False)


def test_multi_seed_and_sharded_specs_run_to_done(service):
    _, client = service
    multi = client.submit({"scenario": "quickstart", "seeds": [0, 1],
                           "overrides": {"connections": 6}})
    doc = client.wait(multi["id"])
    assert doc["result"]["seeds"] == [0, 1]
    sharded = client.submit({"scenario": "impairment-matrix", "shards": 2,
                             "overrides": {"loss_rates": [0.0, 0.01],
                                           "reorder_rates": [0.0],
                                           "connections": 5,
                                           "duration": 1800.0}})
    doc = client.wait(sharded["id"])
    assert doc["state"] == "done"
    assert doc["result"]["params"]["shards"]["count"] == 2
