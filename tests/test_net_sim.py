"""Event loop semantics: ordering, cancellation, run-until."""

import pytest

from repro.net import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_fifo():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_cancel():
    sim = Simulator()
    order = []
    ev = sim.schedule(1.0, order.append, "x")
    sim.schedule(2.0, order.append, "y")
    ev.cancel()
    sim.run()
    assert order == ["y"]


def test_run_until_advances_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert sim.now == 10.0


def test_nested_scheduling():
    sim = Simulator()
    hits = []

    def recur(n):
        hits.append(sim.now)
        if n:
            sim.schedule(1.0, recur, n - 1)

    sim.schedule(0.0, recur, 3)
    sim.run()
    assert hits == [0.0, 1.0, 2.0, 3.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_absolute_scheduling():
    sim = Simulator(start_time=100.0)
    hits = []
    sim.at(105.0, hits.append, "x")
    sim.run()
    assert hits == ["x"] and sim.now == 105.0


def test_run_returns_processed_event_count():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda: None)
    assert sim.run(until=2.5) == 2
    assert sim.run() == 1
    assert sim.run() == 0


def test_run_counts_exclude_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.run() == 1


def test_run_until_idle_drains_everything():
    sim = Simulator()
    hits = []

    def recur(n):
        hits.append(sim.now)
        if n:
            sim.schedule(100.0, recur, n - 1)

    sim.schedule(0.0, recur, 5)
    assert sim.run_until_idle() == 6
    assert hits == [0.0, 100.0, 200.0, 300.0, 400.0, 500.0]
    assert sim.run_until_idle() == 0


def test_run_until_idle_respects_max_events():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    assert sim.run_until_idle(max_events=10) == 10


def test_simulator_counts_events_on_bus():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.bus.count("sim.events") == 2


def test_pending_tracks_schedule_cancel_and_pop():
    sim = Simulator()
    assert sim.pending == 0
    e1 = sim.schedule(1.0, lambda: None)
    e2 = sim.schedule(2.0, lambda: None)
    e3 = sim.schedule(3.0, lambda: None)
    assert sim.pending == 3
    e2.cancel()
    assert sim.pending == 2
    e2.cancel()  # double-cancel must not double-decrement
    assert sim.pending == 2
    sim.run(until=1.5)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert e1 is not None and e3 is not None


def test_pending_counts_events_scheduled_from_callbacks():
    sim = Simulator()

    def chain(n):
        if n:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 4)
    assert sim.pending == 1
    sim.run(until=2.5)
    assert sim.pending == 1  # the next link of the chain
    sim.run()
    assert sim.pending == 0
