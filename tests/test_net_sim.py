"""Event loop semantics: ordering, cancellation, run-until."""

import pytest

from repro.net import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_fifo():
    sim = Simulator()
    order = []
    for tag in "abcde":
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list("abcde")


def test_cancel():
    sim = Simulator()
    order = []
    ev = sim.schedule(1.0, order.append, "x")
    sim.schedule(2.0, order.append, "y")
    ev.cancel()
    sim.run()
    assert order == ["y"]


def test_run_until_advances_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.pending == 1
    sim.run()
    assert sim.now == 10.0


def test_nested_scheduling():
    sim = Simulator()
    hits = []

    def recur(n):
        hits.append(sim.now)
        if n:
            sim.schedule(1.0, recur, n - 1)

    sim.schedule(0.0, recur, 3)
    sim.run()
    assert hits == [0.0, 1.0, 2.0, 3.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_absolute_scheduling():
    sim = Simulator(start_time=100.0)
    hits = []
    sim.at(105.0, hits.append, "x")
    sim.run()
    assert hits == ["x"] and sim.now == 105.0


def test_run_returns_processed_event_count():
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda: None)
    assert sim.run(until=2.5) == 2
    assert sim.run() == 1
    assert sim.run() == 0


def test_run_counts_exclude_cancelled():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.run() == 1


def test_run_until_idle_drains_everything():
    sim = Simulator()
    hits = []

    def recur(n):
        hits.append(sim.now)
        if n:
            sim.schedule(100.0, recur, n - 1)

    sim.schedule(0.0, recur, 5)
    assert sim.run_until_idle() == 6
    assert hits == [0.0, 100.0, 200.0, 300.0, 400.0, 500.0]
    assert sim.run_until_idle() == 0


def test_run_until_idle_respects_max_events():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    assert sim.run_until_idle(max_events=10) == 10


def test_simulator_counts_events_on_bus():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert sim.bus.count("sim.events") == 2


def test_pending_tracks_schedule_cancel_and_pop():
    sim = Simulator()
    assert sim.pending == 0
    e1 = sim.schedule(1.0, lambda: None)
    e2 = sim.schedule(2.0, lambda: None)
    e3 = sim.schedule(3.0, lambda: None)
    assert sim.pending == 3
    e2.cancel()
    assert sim.pending == 2
    e2.cancel()  # double-cancel must not double-decrement
    assert sim.pending == 2
    sim.run(until=1.5)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    assert e1 is not None and e3 is not None


def test_pending_counts_events_scheduled_from_callbacks():
    sim = Simulator()

    def chain(n):
        if n:
            sim.schedule(1.0, chain, n - 1)

    sim.schedule(0.0, chain, 4)
    assert sim.pending == 1
    sim.run(until=2.5)
    assert sim.pending == 1  # the next link of the chain
    sim.run()
    assert sim.pending == 0


# ------------------------------------------------ regression: event-loop bugs


def test_max_events_stop_does_not_jump_clock_past_queued_events():
    # run(until=T, max_events=N) used to advance `now` to T even when it
    # stopped early on max_events with events still queued before T.
    sim = Simulator()
    for t in (1.0, 2.0, 3.0):
        sim.schedule(t, lambda: None)
    assert sim.run(until=10.0, max_events=2) == 2
    assert sim.now == 2.0          # not 10.0: an event is still queued at 3.0
    assert sim.pending == 1
    assert sim.run(until=10.0) == 1
    assert sim.now == 10.0         # queue drained: the horizon is reachable


def test_max_events_stop_ignores_cancelled_events_for_clock_advance():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    later = sim.schedule(3.0, lambda: None)
    later.cancel()
    assert sim.run(until=10.0, max_events=1) == 1
    # The only remaining queue entry is cancelled: the clock may advance.
    assert sim.now == 10.0


def test_cancel_after_execution_is_a_noop():
    # Cancelling an event whose callback already ran used to decrement
    # the live count a second time, driving `pending` negative — the
    # exact shape of TcpConnection._cancel_retx after an RTO fired.
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.pending == 0
    ev.cancel()
    ev.cancel()
    assert sim.pending == 0
    sim.schedule(1.0, lambda: None)
    assert sim.pending == 1


def test_pending_never_negative_under_cancel_storm():
    sim = Simulator()
    events = [sim.schedule(float(i % 3), lambda: None) for i in range(30)]
    events[5].cancel()
    sim.run()
    for ev in events:
        ev.cancel()
        ev.cancel()
    assert sim.pending == 0


# -------------------------------------------------- weighted (burst) events


def test_weighted_event_counts_on_bus_but_not_in_return():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, weight=5)
    sim.schedule(2.0, lambda: None)
    assert sim.run() == 2                       # callbacks actually run
    assert sim.bus.count("sim.events") == 6     # logical (per-segment) count


def test_weighted_event_respects_max_events_by_callback():
    sim = Simulator()
    sim.schedule(1.0, lambda: None, weight=10)
    sim.schedule(2.0, lambda: None, weight=10)
    assert sim.run(max_events=1) == 1
    assert sim.bus.count("sim.events") == 10
    assert sim.pending == 1


# ------------------------------------------------- calendar-queue internals


def test_same_time_events_scheduled_during_bucket_run_fifo():
    # An executing event scheduling at delay 0 appends to the bucket
    # being drained; it must run in this pass, after everything queued.
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(0.0, order.append, "appended")

    sim.schedule(1.0, first)
    sim.schedule(1.0, order.append, "second")
    sim.run()
    assert order == ["first", "second", "appended"]
    assert sim.now == 1.0


def test_interleaved_buckets_preserve_global_order():
    sim = Simulator()
    order = []
    for t, tag in [(2.0, "c"), (1.0, "a"), (2.0, "d"), (1.0, "b"), (3.0, "e")]:
        sim.schedule(t, order.append, tag)
    sim.run()
    assert order == ["a", "b", "c", "d", "e"]


def test_resuming_a_partially_drained_bucket():
    sim = Simulator()
    order = []
    for tag in "abcd":
        sim.schedule(1.0, order.append, tag)
    assert sim.run(max_events=2) == 2
    assert order == ["a", "b"] and sim.now == 1.0
    # New same-time work lands behind the bucket's unconsumed tail.
    sim.schedule(0.0, order.append, "e")
    sim.run()
    assert order == ["a", "b", "c", "d", "e"]
