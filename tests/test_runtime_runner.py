"""The runner: sweeps, deterministic merge, serial == parallel."""

from dataclasses import dataclass

import pytest

from repro.runtime import (
    ResultCache,
    RunResult,
    merge_results,
    run_artifact,
    run_sweep,
)
from repro.runtime.scenario import Scenario, register, unregister

# A real (but scaled-down) builtin scenario: worker processes re-register
# builtins on import, so parallel sweeps can only exercise those.
CHEAP = ("ablation-detector-features", {"samples": 40})


@dataclass
class _ToyParams:
    seed: int = 0
    base: int = 100


@pytest.fixture
def toy_scenario():
    register(Scenario(
        name="_toy-runner",
        title="toy",
        params_type=_ToyParams,
        build=lambda p: {"value": p.base + p.seed},
        summarize=lambda artifact: artifact,
        events_of=lambda artifact: {"counters": {"toy.built": 1}},
    ))
    yield "_toy-runner"
    unregister("_toy-runner")


def test_serial_and_parallel_sweeps_byte_identical():
    """The tentpole determinism property: --jobs M never changes results."""
    name, overrides = CHEAP
    serial = run_sweep(name, seeds=range(3), overrides=overrides, jobs=1)
    parallel = run_sweep(name, seeds=range(3), overrides=overrides, jobs=2)
    assert serial.canonical_bytes() == parallel.canonical_bytes()
    assert [r.seed for r in parallel.results] == [0, 1, 2]


def test_parallel_sweep_uses_and_fills_cache(tmp_path):
    name, overrides = CHEAP
    cache = ResultCache(tmp_path)
    first = run_sweep(name, seeds=range(3), overrides=overrides,
                      jobs=2, cache=cache)
    assert first.cache_misses == 3
    again = run_sweep(name, seeds=range(3), overrides=overrides,
                      jobs=2, cache=cache)
    assert again.cache_hits == 3 and again.cache_misses == 0
    assert again.canonical_bytes() == first.canonical_bytes()


def test_sweep_results_come_back_in_seed_order(toy_scenario):
    sweep = run_sweep(toy_scenario, seeds=[4, 1, 3])
    assert [r.seed for r in sweep.results] == [4, 1, 3]  # submission order
    assert sweep.merged()["seeds"] == [1, 3, 4]          # merge sorts


def test_merge_aggregates_metrics_and_events(toy_scenario):
    sweep = run_sweep(toy_scenario, seeds=range(3))
    merged = sweep.merged()
    assert merged["scenario"] == toy_scenario
    assert merged["metrics"]["value"] == {"mean": 101.0, "min": 100, "max": 102}
    assert merged["events"] == {"toy.built": 3}
    assert len(merged["runs"]) == 3


def test_merge_skips_non_numeric_and_partial_metrics():
    def make(seed, payload):
        return RunResult(scenario="s", params={}, seed=seed, payload=payload,
                         events={}, wall_time=0.0, fingerprint="f")

    merged = merge_results([
        make(0, {"n": 1, "name": "a", "flag": True, "partial": 5}),
        make(1, {"n": 3, "name": "b", "flag": False}),
    ])
    assert merged["metrics"] == {"n": {"mean": 2.0, "min": 1, "max": 3}}


def test_merge_empty():
    merged = merge_results([])
    assert merged["seeds"] == [] and merged["runs"] == []


def test_run_artifact_returns_live_object(tmp_path, toy_scenario):
    cache = ResultCache(tmp_path)
    result, artifact = run_artifact(toy_scenario, seed=2, cache=cache)
    assert artifact == {"value": 102}
    assert not result.cache_hit
    # It still records the run on disk...
    assert cache.load(result.scenario, result.params, result.seed,
                      result.fingerprint) is not None
    # ...and never serves the artifact from cache (always re-executes).
    result2, artifact2 = run_artifact(toy_scenario, seed=2, cache=cache)
    assert artifact2 == {"value": 102} and not result2.cache_hit


def test_unknown_scenario_fails_fast():
    with pytest.raises(KeyError):
        run_sweep("no-such-scenario", seeds=range(2), jobs=2)
