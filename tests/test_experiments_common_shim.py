"""The retired ``repro.experiments.common`` shim warns but still works."""

import importlib
import sys

import pytest


def test_importing_common_fires_deprecation_warning():
    sys.modules.pop("repro.experiments.common", None)
    with pytest.warns(DeprecationWarning, match="repro.runtime.topology"):
        importlib.import_module("repro.experiments.common")


def test_shim_reexports_canonical_objects():
    sys.modules.pop("repro.experiments.common", None)
    with pytest.warns(DeprecationWarning):
        common = importlib.import_module("repro.experiments.common")
    from repro.runtime import topology

    for name in ("CHINA_CIDRS", "World", "build_world", "settle",
                 "subnet_prefix"):
        assert getattr(common, name) is getattr(topology, name)


def test_package_root_does_not_warn():
    # ``from repro.experiments import build_world`` is the supported
    # path and must stay silent: the package root imports from
    # repro.runtime.topology directly, not through the shim.
    sys.modules.pop("repro.experiments.common", None)
    sys.modules.pop("repro.experiments", None)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        module = importlib.import_module("repro.experiments")
    assert hasattr(module, "build_world")
