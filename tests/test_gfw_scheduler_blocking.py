"""Unit tests for the probe scheduler, prober runner, and blocking module."""

import random

import pytest

from repro.gfw import (
    BlockingModule,
    BlockingPolicy,
    FleetConfig,
    ProbeForge,
    ProbeScheduler,
    ProbeType,
    ProberFleet,
    ProberRunner,
    Reaction,
    SchedulerConfig,
)
from repro.gfw.scheduler import ServerProbeState
from repro.net import Flags, Host, Network, Segment, Simulator


def make_rig(seed=0, scheduler_config=None):
    sim = Simulator()
    net = Network(sim)
    fleet_host = Host(sim, net, "100.64.0.1", "fleet")
    fleet = ProberFleet(fleet_host, rng=random.Random(seed))
    runner = ProberRunner(fleet, rng=random.Random(seed + 1))
    scheduler = ProbeScheduler(runner, rng=random.Random(seed + 2),
                               config=scheduler_config)
    return sim, net, fleet, runner, scheduler


class SinkApp:
    def __init__(self, conn):
        conn.on_data = lambda data: None


class RstApp:
    def __init__(self, conn):
        conn.on_data = lambda data: conn.abort()


class DataApp:
    def __init__(self, conn):
        conn.on_data = lambda data: conn.send(b"response!")


# ------------------------------------------------------------------ runner


def test_runner_classifies_rst():
    sim, net, fleet, runner, _ = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, RstApp)
    record = runner.send_probe(ProbeForge().nr2(), "198.51.100.1", 8388)
    sim.run(until=30)
    assert record.reaction == Reaction.RST


def test_runner_classifies_timeout():
    sim, net, fleet, runner, _ = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, SinkApp)
    record = runner.send_probe(ProbeForge().nr2(), "198.51.100.1", 8388)
    sim.run(until=30)
    assert record.reaction == Reaction.TIMEOUT
    assert record.time_done - record.time_sent < 11


def test_runner_classifies_data_and_closes():
    sim, net, fleet, runner, _ = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, DataApp)
    record = runner.send_probe(ProbeForge().nr2(), "198.51.100.1", 8388)
    sim.run(until=30)
    assert record.reaction == Reaction.DATA
    assert record.response_bytes == 9


def test_runner_classifies_unreachable():
    sim, net, fleet, runner, _ = make_rig()
    net.unreachable_policy = "drop"
    record = runner.send_probe(ProbeForge().nr2(), "198.51.100.99", 8388)
    sim.run(until=30)
    assert record.reaction == Reaction.UNREACHABLE


def test_runner_result_callback_fires_once():
    sim, net, fleet, runner, _ = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")

    class DataThenFin:
        def __init__(self, conn):
            def on_data(data):
                conn.send(b"reply")
                conn.close()

            conn.on_data = on_data

    server.listen(8388, DataThenFin)
    results = []
    runner.send_probe(ProbeForge().nr2(), "198.51.100.1", 8388,
                      on_result=results.append)
    sim.run(until=30)
    assert len(results) == 1
    assert results[0].reaction == Reaction.DATA


def test_runner_probe_metadata():
    sim, net, fleet, runner, _ = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, SinkApp)
    record = runner.send_probe(ProbeForge().nr1(), "198.51.100.1", 8388,
                               trigger_time=0.0)
    sim.run(until=30)
    assert record.process_name.startswith("proc-")
    assert record.src_ip != "100.64.0.1"
    assert record.delay == record.time_sent


# --------------------------------------------------------------- scheduler


def test_scheduler_flag_schedules_r1():
    sim, net, fleet, runner, scheduler = make_rig()
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, SinkApp)
    scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(range(200)))
    sim.run(until=600 * 3600)
    r1 = [r for r in runner.log if r.probe_type == ProbeType.R1]
    assert r1
    assert all(r.probe.payload == bytes(range(200)) for r in r1)


def test_scheduler_respects_probe_cap():
    config = SchedulerConfig(max_probes_per_server=3)
    sim, net, fleet, runner, scheduler = make_rig(scheduler_config=config)
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, SinkApp)
    for _ in range(10):
        scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(300))
    state = scheduler.state_for("198.51.100.1", 8388)
    assert state.probes_sent == 3


def test_scheduler_stage2_on_replay_data():
    sim, net, fleet, runner, scheduler = make_rig(seed=5)
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, DataApp)
    scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(range(100)))
    sim.run(until=600 * 3600)
    state = scheduler.state_for("198.51.100.1", 8388)
    assert state.stage == 2
    types = {r.probe_type for r in runner.log}
    assert types & {ProbeType.R3, ProbeType.R4}


def test_scheduler_payload_memory_bounded():
    sim, net, fleet, runner, scheduler = make_rig()
    state = scheduler.state_for("1.2.3.4", 1)
    for i in range(scheduler.MAX_RECORDED_PAYLOADS + 100):
        scheduler.on_flagged_connection("1.2.3.4", 1, bytes([i % 256]) * 10)
    assert len(state.recorded_payloads) == scheduler.MAX_RECORDED_PAYLOADS


def test_scheduler_nr1_requires_serving_and_threshold():
    config = SchedulerConfig(nr1_flag_threshold=3, nr1_probability=1.0)
    sim, net, fleet, runner, scheduler = make_rig(scheduler_config=config)
    server = Host(sim, net, "198.51.100.1", "server")
    server.listen(8388, SinkApp)
    # Below threshold / not serving: no NR1.
    for _ in range(2):
        scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(50))
    assert not any(r.probe_type == ProbeType.NR1 for r in runner.log)
    scheduler.note_server_data("198.51.100.1", 8388)
    for _ in range(3):
        scheduler.on_flagged_connection("198.51.100.1", 8388, bytes(50))
    sim.run(until=48 * 3600)
    assert any(r.probe_type == ProbeType.NR1 for r in runner.log)


# ----------------------------------------------------------------- blocking


def probe_record(reaction, is_replay=True):
    from repro.gfw.prober import ProbeRecord

    forge = ProbeForge(random.Random(1))
    probe = forge.replay(bytes(100)) if is_replay else forge.nr2()
    record = ProbeRecord(probe=probe, server_ip="9.9.9.9", server_port=1,
                         src_ip="1.1.1.1", src_port=2, time_sent=0.0,
                         tsval=0, process_name="p")
    record.reaction = reaction
    return record


def test_blocking_requires_combined_evidence():
    sim = Simulator()
    module = BlockingModule(sim, rng=random.Random(1),
                            policy=BlockingPolicy(human_gated=False,
                                                  block_probability=1.0))
    state = ServerProbeState("9.9.9.9", 1)
    # Replay-data alone does not confirm.
    for _ in range(5):
        module.consider(state, probe_record(Reaction.DATA))
    assert module.blocked_count == 0
    # Distinctive reactions complete the evidence.
    module.consider(state, probe_record(Reaction.RST, is_replay=False))
    module.consider(state, probe_record(Reaction.RST, is_replay=False))
    assert module.is_blocked("9.9.9.9", 1)


def test_blocking_statistical_path_needs_volume():
    sim = Simulator()
    policy = BlockingPolicy(human_gated=False, block_probability=1.0,
                            min_confirming_reactions=10)
    module = BlockingModule(sim, rng=random.Random(2), policy=policy)
    state = ServerProbeState("9.9.9.9", 1)
    for i in range(9):
        module.consider(state, probe_record(Reaction.RST, is_replay=False))
    assert module.blocked_count == 0
    module.consider(state, probe_record(Reaction.RST, is_replay=False))
    assert module.blocked_count == 1


def test_blocking_by_ip_vs_port():
    sim = Simulator()
    module = BlockingModule(sim, rng=random.Random(3))
    module.block("5.5.5.5", 443, by_ip=False)
    assert module.is_blocked("5.5.5.5", 443)
    assert not module.is_blocked("5.5.5.5", 80)
    module.block("6.6.6.6", by_ip=True)
    assert module.is_blocked("6.6.6.6", 1234)


def test_blocking_should_drop_is_unidirectional():
    sim = Simulator()
    module = BlockingModule(sim, rng=random.Random(4))
    module.block("5.5.5.5", 443, by_ip=False)
    from_server = Segment(src_ip="5.5.5.5", dst_ip="1.1.1.1", src_port=443,
                          dst_port=999, flags=Flags.ACK)
    to_server = Segment(src_ip="1.1.1.1", dst_ip="5.5.5.5", src_port=999,
                        dst_port=443, flags=Flags.ACK)
    assert module.should_drop(from_server)
    assert not module.should_drop(to_server)


def test_unblock_lapses_without_recheck():
    sim = Simulator()
    policy = BlockingPolicy(unblock_after=100.0, unblock_jitter=0.0)
    module = BlockingModule(sim, rng=random.Random(5), policy=policy)
    module.block("5.5.5.5", 443, by_ip=False)
    sim.run(until=99)
    assert module.is_blocked("5.5.5.5", 443)
    sim.run(until=101)
    assert not module.is_blocked("5.5.5.5", 443)


def test_gate_open_windows():
    sim = Simulator()
    policy = BlockingPolicy(human_gated=True, sensitive_periods=[(10, 20)])
    module = BlockingModule(sim, policy=policy)
    assert not module.gate_open(5)
    assert module.gate_open(15)
    assert not module.gate_open(25)
    assert BlockingModule(sim, policy=BlockingPolicy(human_gated=False)).gate_open(5)
