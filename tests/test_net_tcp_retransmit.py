"""TCP retransmission machinery: armed only on unreliable networks."""

import random

from repro.net import Flags, Host, Impairment, Network, Simulator, TcpState


def make_pair(impairment=None, seed=5):
    sim = Simulator()
    net = Network(sim, impairment=impairment, rng=random.Random(seed))
    client = Host(sim, net, "10.0.0.1", "client")
    server = Host(sim, net, "10.0.0.2", "server")
    return sim, net, client, server


class Collector:
    def __init__(self, conn):
        self.conn = conn
        self.data = bytearray()
        conn.on_data = self.data.extend
        conn.on_remote_fin = conn.close


def test_reliable_connection_has_no_retx_machinery():
    sim, net, client, server = make_pair()
    server.listen(80, Collector)
    conn = client.connect("10.0.0.2", 80)
    assert conn.reliable
    sim.run(until=2)
    assert conn.state == TcpState.ESTABLISHED
    assert conn._retx_queue == []
    assert conn._retx_event is None
    assert conn.retransmits == 0


def test_syn_retry_survives_initial_blackout():
    # The link is down for the first 1.5 s: the SYN (and the first
    # retry at +1 s) are lost; the +3 s retry lands.
    sim, net, client, server = make_pair(
        impairment=Impairment(flaps=((0.0, 1.5),)))
    server.listen(80, Collector)
    conn = client.connect("10.0.0.2", 80)
    assert not conn.reliable
    sim.run(until=10)
    assert conn.state == TcpState.ESTABLISHED
    assert conn.retransmits >= 1
    assert sim.bus.count("tcp.syn.retry") >= 1
    assert sim.bus.count("net.flap.drop") >= 1


def test_syn_retry_backoff_then_give_up():
    # Permanent blackout: the SYN is retried SYN_RETRIES times with
    # exponential backoff (1, 2, 4, 8, 16 s), then the connection gives
    # up locally.
    sim, net, client, server = make_pair(
        impairment=Impairment(flaps=((0.0, 1e9),)))
    server.listen(80, Collector)
    conn = client.connect("10.0.0.2", 80)
    sim.run(until=120)
    syn_times = [rec.time for rec in client.capture.sent()
                 if rec.segment.is_syn]
    assert len(syn_times) == 1 + conn.SYN_RETRIES
    gaps = [b - a for a, b in zip(syn_times, syn_times[1:])]
    assert gaps == [1.0, 2.0, 4.0, 8.0, 16.0]
    assert conn.timed_out
    assert conn.state == TcpState.CLOSED
    assert sim.bus.count("tcp.timeout") == 1


def test_bulk_transfer_survives_heavy_loss():
    sim, net, client, server = make_pair(
        impairment=Impairment(loss=0.25), seed=3)
    server.listen(80, Collector)
    apps = []
    server.listen(81, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 81)
    payload = bytes(range(256)) * 40  # several MSS worth
    conn.on_connected = lambda: (conn.send(payload), conn.close())
    sim.run_until_idle()
    assert apps and bytes(apps[0].data) == payload
    assert conn.retransmits > 0
    assert sim.bus.count("tcp.retransmit") > 0


def test_duplicates_delivered_exactly_once():
    # No close: the connection stays up while the trailing copies land,
    # so the receiver's dedup path (not connection teardown) absorbs them.
    sim, net, client, server = make_pair(
        impairment=Impairment(duplicate=1.0))
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 80)
    payload = b"once and only once" * 100  # two MSS-sized chunks
    conn.on_connected = lambda: conn.send(payload)
    sim.run(until=30)
    assert apps and bytes(apps[0].data) == payload
    assert apps[0].conn.bytes_received == len(payload)
    assert sim.bus.count("tcp.dup.dropped") > 0


def test_reordered_segments_reassembled_in_order():
    # Half the segments are held back long enough for later ones to
    # overtake them; the receiver must still hand data up in order.
    sim, net, client, server = make_pair(
        impairment=Impairment(reorder=0.5, reorder_skew=0.2), seed=9)
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 80)
    payload = bytes(i & 0xFF for i in range(20_000))
    conn.on_connected = lambda: (conn.send(payload), conn.close())
    sim.run_until_idle()
    assert apps and bytes(apps[0].data) == payload
    assert sim.bus.count("tcp.ooo.buffered") > 0


def test_lost_syn_ack_is_retransmitted():
    # Loss only on the server->client path: the SYN arrives, the
    # SYN/ACK dies, and the server's retransmission timer resends it.
    sim = Simulator()
    net = Network(sim, rng=random.Random(2))
    client = Host(sim, net, "10.0.0.1", "client")
    server = Host(sim, net, "10.0.0.2", "server")
    net.set_impairment("10.0.0.2", "10.0.0.1",
                       Impairment(flaps=((0.0, 1.2),)), symmetric=False)
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 80)
    sim.run(until=30)
    assert conn.state == TcpState.ESTABLISHED
    assert apps[0].conn.state == TcpState.ESTABLISHED
    assert sim.bus.count("tcp.retransmit") >= 1


def test_fin_is_retransmitted_until_acked():
    sim, net, client, server = make_pair(
        impairment=Impairment(loss=0.5), seed=17)
    apps = []
    server.listen(80, lambda c: apps.append(Collector(c)))
    conn = client.connect("10.0.0.2", 80)
    conn.on_connected = lambda: (conn.send(b"bye"), conn.close())
    sim.run_until_idle()
    assert apps and bytes(apps[0].data) == b"bye"
    assert apps[0].conn.fin_received
    assert conn.state == TcpState.CLOSED


def test_impaired_transfer_is_deterministic():
    def run(seed):
        sim, net, client, server = make_pair(
            impairment=Impairment(loss=0.2, reorder=0.3, duplicate=0.1),
            seed=seed)
        apps = []
        server.listen(80, lambda c: apps.append(Collector(c)))
        conn = client.connect("10.0.0.2", 80)
        payload = bytes(7 * i & 0xFF for i in range(8000))
        conn.on_connected = lambda: (conn.send(payload), conn.close())
        sim.run_until_idle()
        return (bytes(apps[0].data), conn.retransmits,
                dict(sim.bus.counters))

    assert run(23) == run(23)
