"""The proxy-protocol registry: specs, factories, probing playbooks."""

import pytest

from repro.protocols import (
    ObfsProtocol,
    ProxyProtocol,
    ShadowsocksProtocol,
    VmessProtocol,
    build_protocol,
    get_protocol,
    protocol_kinds,
    register_protocol,
)


def test_builtin_kinds_registered():
    assert {"shadowsocks", "vmess", "obfs"} <= set(protocol_kinds())


def test_bare_string_builds_defaults():
    proto = build_protocol("shadowsocks")
    assert isinstance(proto, ShadowsocksProtocol)
    assert proto.password == "pw"
    assert proto.method == "chacha20-ietf-poly1305"


def test_mapping_spec_overrides_params():
    proto = build_protocol({"kind": "obfs", "profile": "obfs3",
                            "node_id": "b1"})
    assert isinstance(proto, ObfsProtocol)
    assert proto.profile == "obfs3"
    assert proto.node_id == "b1"


def test_instance_passes_through():
    proto = VmessProtocol(profile="v2ray-legacy")
    assert build_protocol(proto) is proto


def test_unknown_kind_raises_with_known_list():
    with pytest.raises(KeyError, match="shadowsocks"):
        build_protocol("no-such-protocol")


def test_spec_missing_kind_raises():
    with pytest.raises(ValueError, match="kind"):
        build_protocol({"profile": "obfs4"})


def test_spec_rebuilds_equivalent_protocol():
    for kind in protocol_kinds():
        proto = get_protocol(kind)
        assert build_protocol(proto.spec()).spec() == proto.spec()


def test_probe_behavior_routing():
    assert get_protocol("shadowsocks").probe_behavior == "shadowsocks"
    assert get_protocol("vmess").probe_behavior == "shadowsocks"
    assert get_protocol("obfs").probe_behavior == "tor"


def test_register_requires_kind():
    class Anonymous(ProxyProtocol):
        kind = ""

    with pytest.raises(ValueError):
        register_protocol(Anonymous)


def test_vmess_user_id_hex_round_trip():
    proto = build_protocol({"kind": "vmess", "user_id": "00" * 16})
    assert proto.user_id_bytes == b"\x00" * 16
