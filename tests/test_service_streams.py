"""JobStream fan-out semantics: replay, slow consumers, EOF."""

import asyncio

from repro.service.streams import JobStream


def _run(coro):
    return asyncio.run(coro)


def test_publish_reaches_every_subscriber():
    async def scenario():
        stream = JobStream("j1")
        a, b = stream.subscribe(), stream.subscribe()
        stream.publish({"kind": "probe"})
        stream.close()
        assert [await a.get(), await a.get()] == [{"kind": "probe"}, None]
        assert [await b.get(), await b.get()] == [{"kind": "probe"}, None]
        assert stream.received == 1 and stream.dropped == 0

    _run(scenario())


def test_late_subscriber_replays_buffer_then_eof():
    async def scenario():
        stream = JobStream("j1")
        for i in range(3):
            stream.publish({"n": i})
        stream.close()
        queue = stream.subscribe()  # after close: replay + sentinel
        got = [await queue.get() for _ in range(4)]
        assert got == [{"n": 0}, {"n": 1}, {"n": 2}, None]
        assert stream.subscriber_count == 0  # never attached live

    _run(scenario())


def test_replay_buffer_is_bounded_and_counts_truncation():
    async def scenario():
        stream = JobStream("j1", replay_depth=2)
        for i in range(5):
            stream.publish({"n": i})
        assert list(stream.buffer) == [{"n": 3}, {"n": 4}]
        assert stream.truncated == 3
        stream.close()
        queue = stream.subscribe()
        assert [await queue.get() for _ in range(3)] \
            == [{"n": 3}, {"n": 4}, None]

    _run(scenario())


def test_slow_consumer_drops_are_counted_not_blocking():
    async def scenario():
        stream = JobStream("j1")
        slow = stream.subscribe()
        depth = slow.maxsize
        for i in range(depth + 5):
            stream.publish({"n": i})
        # The overflow is dropped for the stalled subscriber and
        # counted; the stream itself keeps accepting records.
        assert stream.dropped == 5
        assert slow.qsize() == depth
        assert stream.received == depth + 5
        # A consumer that keeps draining misses nothing.
        fast = stream.subscribe()  # replays the buffered tail
        replayed = fast.qsize()
        stream.publish({"n": "live"})
        assert fast.qsize() == replayed + 1

    _run(scenario())


def test_unsubscribe_detaches_and_close_is_idempotent():
    async def scenario():
        stream = JobStream("j1")
        queue = stream.subscribe()
        stream.unsubscribe(queue)
        stream.publish({"n": 1})
        assert queue.empty()
        stream.close()
        stream.close()  # second close must be a no-op
        assert stream.closed

    _run(scenario())
