"""Prober fleet fingerprints (§3.3-3.4): IP churn, ports, TSvals, TTL."""

import random

from repro.net import Host, Network, Simulator, lookup_asn
from repro.gfw import FleetConfig, ProberFleet


def make_fleet(seed=3):
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "100.64.0.1", "fleet")
    return sim, net, ProberFleet(host, rng=random.Random(seed))


def test_ips_all_resolve_to_known_ases():
    _, _, fleet = make_fleet()
    for _ in range(200):
        assert lookup_asn(fleet.pick_ip()) is not None


def test_ip_reuse_dominates():
    """>75% of addresses are used more than once at paper-scale volumes."""
    _, _, fleet = make_fleet()
    for _ in range(5000):
        fleet.pick_ip()
    counts = fleet.use_counts
    multi = sum(1 for c in counts.values() if c > 1)
    assert multi / len(counts) > 0.6
    # Preferential reuse produces a heavy head, like Table 2.
    assert max(counts.values()) >= 15


def test_new_ip_fraction_near_churn_rate():
    _, _, fleet = make_fleet()
    n = 5000
    for _ in range(n):
        fleet.pick_ip()
    assert 0.18 < fleet.unique_ips / n < 0.30


def test_ports_mostly_linux_default_range():
    _, _, fleet = make_fleet()
    ports = [fleet.pick_port() for _ in range(4000)]
    in_linux = sum(1 for p in ports if 32768 <= p <= 60999)
    assert 0.86 < in_linux / len(ports) < 0.94
    assert min(ports) >= 1024


def test_tsval_processes_shared_and_linear():
    sim, _, fleet = make_fleet()
    proc = fleet.processes[0]
    t0 = proc.tsval_at(0.0)
    t1 = proc.tsval_at(100.0)
    assert (t1 - t0) % (1 << 32) == int(250.0 * 100)


def test_tsval_process_mix():
    _, _, fleet = make_fleet()
    picks = [fleet.pick_process().name for _ in range(5000)]
    dominant = picks.count("proc-250hz-0")
    assert dominant / len(picks) > 0.7
    assert any(name.startswith("proc-1000hz") for name in picks)
    assert len(set(picks)) >= 5  # several distinct processes observed


def test_tsval_wraps_at_2_32():
    from repro.gfw import TsvalProcess

    proc = TsvalProcess("p", 250.0, (1 << 32) - 100)
    assert proc.tsval_at(10.0) == ((1 << 32) - 100 + 2500) % (1 << 32)


def test_ttl_arrival_range():
    """Hops are set so probe segments arrive with TTL 46-50."""
    sim, net, fleet = make_fleet()
    for _ in range(100):
        ip = fleet.pick_ip()
        arrival_ttl = fleet.config.initial_ttl - net.hops(ip, "198.51.100.1")
        assert 46 <= arrival_ttl <= 50


def test_config_overrides():
    sim = Simulator()
    net = Network(sim)
    host = Host(sim, net, "100.64.0.2", "fleet2")
    fleet = ProberFleet(host, rng=random.Random(0),
                        config=FleetConfig(new_ip_probability=1.0))
    ips = {fleet.pick_ip() for _ in range(50)}
    assert len(ips) == 50  # every probe mints a fresh address
