"""The service metrics registry and its Prometheus text rendering."""

import pytest

from repro.service import MetricsRegistry


def test_counter_increments_and_reads_back():
    registry = MetricsRegistry()
    jobs = registry.counter("jobs_total", "Jobs.", labelnames=("state",))
    jobs.inc(state="done")
    jobs.inc(2, state="done")
    jobs.inc(state="failed")
    assert jobs.value(state="done") == 3
    assert jobs.value(state="failed") == 1
    assert jobs.value(state="cancelled") == 0


def test_counter_rejects_decrease_and_bad_labels():
    registry = MetricsRegistry()
    hits = registry.counter("hits_total", "Hits.")
    with pytest.raises(ValueError):
        hits.inc(-1)
    labelled = registry.counter("by_route", "Routes.", labelnames=("route",))
    with pytest.raises(ValueError):
        labelled.inc(verb="GET")  # wrong label name
    with pytest.raises(ValueError):
        labelled.inc()  # missing label


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    active = registry.gauge("active", "Active.")
    active.set(5)
    active.inc()
    active.dec(2)
    assert active.value() == 4


def test_reregistration_is_idempotent_for_identical_shape():
    registry = MetricsRegistry()
    first = registry.counter("records_total", "Records.")
    again = registry.counter("records_total", "Records.")
    assert again is first
    with pytest.raises(ValueError):
        registry.gauge("records_total", "Records.")  # type change
    with pytest.raises(ValueError):
        registry.counter("records_total", "Records.",
                         labelnames=("job",))  # label change


def test_render_is_sorted_escaped_prometheus_text():
    registry = MetricsRegistry()
    zz = registry.counter("zz_total", "Last.")
    aa = registry.counter("aa_total", "First.", labelnames=("label",))
    gauge = registry.gauge("mid_gauge", "Middle.")
    zz.inc(7)
    aa.inc(label='with "quote" and \\slash')
    gauge.set(0.25)
    text = registry.render()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert lines[0] == "# HELP aa_total First."
    assert lines[1] == "# TYPE aa_total counter"
    assert lines[2] == ('aa_total{label="with \\"quote\\" and '
                        '\\\\slash"} 1')
    assert "# TYPE mid_gauge gauge" in lines
    assert "mid_gauge 0.25" in lines
    assert "zz_total 7" in lines
    # Metric families render in name order.
    assert lines.index("# HELP aa_total First.") \
        < lines.index("# HELP mid_gauge Middle.") \
        < lines.index("# HELP zz_total Last.")


def test_unlabelled_counter_renders_zero_before_first_increment():
    registry = MetricsRegistry()
    registry.counter("cold_total", "Never incremented.")
    assert "cold_total 0" in registry.render().splitlines()
